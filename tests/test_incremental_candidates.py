"""Property tests for the incremental Greedy-k candidate engine (PR 5).

Three warm paths replaced from-scratch recomputation inside the reduction
loop's candidate machinery, and each must be byte-identical to the cold
path it replaced:

* ``_CandidateDVState.patch`` re-targets a warm killed-graph mirror onto a
  changed killing function by rewriting only the killing-arc slots that
  moved -- the patched killed graph, DV rows and extracted antichain must
  equal a full :meth:`rebuild`'s;
* the session's pair-verdict worklist re-uses ``consider`` verdicts for
  pairs untouched by the applied serialization -- every (possibly cached)
  verdict must equal a cold session's on the same graph;
* :class:`~repro.scheduling.list_scheduler.IncrementalListSchedule` repairs
  the keep-alive candidate's list schedule downstream of pushed arcs -- the
  repaired schedule must equal the from-scratch keep-alive scheduler's,
  across push *and* pop.

The tests drive the real heuristic loop (via ``_SessionDriver`` /
``_HeuristicLoop``) so the exercised kf deltas are the ones production
takes, and they assert the warm paths actually fired (a silently dead patch
path would pass any equality check).
"""

from __future__ import annotations

import pytest

from repro.analysis.context import context_for
from repro.codes.generator import layered_random_ddg, random_superblock
from repro.codes.kernels import figure2_dag
from repro.core.graph import Edge
from repro.core.types import INT, DependenceKind
from repro.reduction import ReductionSession
from repro.reduction.heuristic import _HeuristicLoop, _SessionDriver
from repro.reduction.serialization import SerializationMode
from repro.saturation.greedy import _keep_alive_schedule_uncached
from repro.saturation.incremental import _CandidateDVState
from repro.saturation.pkill import KillingFunction, killed_graph
from repro.scheduling.list_scheduler import IncrementalListSchedule


def _edge_key(graph):
    return sorted(
        (e.src, e.dst, e.latency, e.kind.value, None if e.rtype is None else e.rtype.name)
        for e in graph.edges()
    )


def _drive_loop(ddg, rtype, budget, on_iteration=None, max_iterations=500):
    driver = _SessionDriver(ddg.copy(), rtype, SerializationMode.OFFSETS, True)
    loop = _HeuristicLoop(driver, max_iterations)
    loop.on_iteration = on_iteration
    initial = driver.saturation()
    if on_iteration is not None:
        on_iteration(initial)
    loop.run_to(initial, budget)
    return driver


class TestCandidatePatchEqualsRebuild:
    """A patched DV state must be indistinguishable from a rebuilt one."""

    def _check_states(self, session):
        saturation = session._saturation
        pk = saturation._pk
        for label, state in saturation._candidate_states.items():
            if not state.valid or state.kf_mapping is None:
                continue
            kf = KillingFunction(session.rtype, state.kf_mapping)
            if state.cyclic:
                # The cached invalidity verdict must agree with a cold build.
                killed = killed_graph(saturation.mirror_ddg, kf, pk=pk)
                assert not context_for(killed).is_acyclic(), label
                continue
            reference = _CandidateDVState(
                saturation._values, saturation._node_index, saturation._delta_w
            )
            reference.rebuild(saturation.mirror_ddg, kf, pk)
            assert not reference.cyclic, label
            assert _edge_key(state.analysis.ddg) == _edge_key(reference.analysis.ddg), (
                f"patched killed graph diverges from rebuild on {label!r}"
            )
            assert state.dv_rows() == reference.dv_rows(), (
                f"patched DV rows diverge from rebuild on {label!r}"
            )
            assert state.antichain() == reference.antichain() == (
                state.antichain_from_scratch()
            ), f"patched antichain diverges on {label!r}"

    @pytest.mark.parametrize("seed", range(5))
    def test_patched_states_equal_rebuilt_states(self, seed):
        ddg = layered_random_ddg(nodes=18 + seed, layers=4, seed=40 + seed)
        checked = {"iters": 0}

        def probe(_sat):
            checked["iters"] += 1

        driver = _drive_loop(ddg, INT, 2, on_iteration=probe)
        self._check_states(driver.session)
        assert checked["iters"] >= 1

    def test_superblock_patches_fire_and_match(self):
        ddg = random_superblock(operations=60, seed=3)
        driver = _drive_loop(ddg, INT, 6)
        session = driver.session
        self._check_states(session)
        stats = session.saturation_stats
        # The warm paths must actually have been taken on a reduction-heavy
        # instance -- equality over a dead patch path proves nothing.
        assert stats["dv_patches"] > 0
        assert stats["dv_reuses"] > 0
        assert session.stats["pair_verdicts_reused"] > 0
        assert stats["schedule_repairs"] > 0

    def test_patch_after_explicit_push_matches_rebuild(self):
        """Patching across session pushes (synced killed mirrors) stays exact."""

        ddg = layered_random_ddg(nodes=20, layers=4, seed=7)
        session = ReductionSession(ddg, INT)
        sat = session.saturation()
        pushed = False
        for u in sat.saturating_values:
            for v in sat.saturating_values:
                if u != v:
                    edges = session.legal_serialization(u, v)
                    if edges:
                        session.push(edges)
                        pushed = True
                        break
            if pushed:
                break
        assert pushed
        session.saturation()
        self._check_states(session)


class TestPairVerdictWorklist:
    """Cached `consider` verdicts must equal a cold session's verdicts."""

    @pytest.mark.parametrize("seed", range(4))
    def test_verdicts_match_cold_session(self, seed):
        ddg = layered_random_ddg(nodes=17 + seed, layers=4, seed=50 + seed)
        driver = _SessionDriver(ddg.copy(), INT, SerializationMode.OFFSETS, True)
        session = driver.session
        loop = _HeuristicLoop(driver, 500)
        current = driver.saturation()

        def compare_all_pairs(sat):
            cold = ReductionSession(session.ddg.copy(), INT, prune_redundant=False)
            base_cp = session.critical_path()
            assert cold.critical_path() == base_cp
            values = list(sat.saturating_values)
            for u in values:
                for v in values:
                    if u == v:
                        continue
                    warm = session.consider(u, v, base_cp)
                    fresh = cold.consider(u, v, base_cp)
                    if warm is session.IMPLIED or fresh is cold.IMPLIED:
                        assert warm is session.IMPLIED and fresh is cold.IMPLIED, (u, v)
                    else:
                        assert warm == fresh, (u, v)

        compare_all_pairs(current)
        for _ in range(4):
            before = loop.iterations
            current = loop.run_to(current, max(1, current.rs - 1))
            if loop.iterations == before or loop.stuck:
                break
            compare_all_pairs(current)
        assert session.stats["pair_verdicts_reused"] > 0

    def test_verdict_cache_restored_by_pop(self):
        ddg = layered_random_ddg(nodes=18, layers=4, seed=12)
        session = ReductionSession(ddg, INT)
        sat = session.saturation()
        base_cp = session.critical_path()
        values = list(sat.saturating_values)
        applied = None
        for u in values:
            for v in values:
                if u == v:
                    continue
                verdict = session.consider(u, v, base_cp)
                if verdict is not session.IMPLIED and verdict is not None:
                    applied = verdict
                    break
            if applied is not None:
                break
        if applied is None:
            pytest.skip("graph admits no applicable serialization")
        snapshot = dict(session._pair_verdicts)
        session.apply_payload(applied[2])
        session.pop()
        assert session._pair_verdicts == snapshot


class TestIncrementalListSchedule:
    """The repaired keep-alive schedule equals the from-scratch scheduler's."""

    @pytest.mark.parametrize("seed", range(5))
    def test_reschedule_matches_from_scratch(self, seed):
        ddg = layered_random_ddg(nodes=16 + seed, layers=4, seed=60 + seed)
        g = ddg.with_bottom()
        warm = IncrementalListSchedule(g)
        rtype = ddg.register_types()[0]
        assert warm.schedule() == _keep_alive_schedule_uncached(g, rtype, context_for(g))

        desc = context_for(g).descendants_map(include_self=False)
        nodes = g.nodes()
        added = 0
        for u in nodes:
            if added >= 3:
                break
            for v in nodes:
                if u == v or u in desc[v] or v in desc[u]:
                    continue
                edge = Edge(u, v, 2, DependenceKind.SERIAL, None)
                g.add_edge(edge)
                desc = context_for(g).descendants_map(include_self=False)
                warm.push()
                warm.reschedule([v])
                assert warm.schedule() == _keep_alive_schedule_uncached(
                    g, rtype, context_for(g)
                ), f"repair diverges after adding {u}->{v}"
                added += 1
                break
        assert added >= 1

    def test_push_pop_restores_schedule(self):
        ddg = figure2_dag().with_bottom()
        warm = IncrementalListSchedule(ddg)
        before = warm.schedule()
        desc = context_for(ddg).descendants_map(include_self=False)
        pair = next(
            (u, v)
            for u in ddg.nodes()
            for v in ddg.nodes()
            if u != v and u not in desc[v] and v not in desc[u]
        )
        edge = Edge(pair[0], pair[1], 4, DependenceKind.SERIAL, None)
        ddg.add_edge(edge)
        warm.push()
        warm.reschedule([pair[1]])
        ddg.remove_edge(edge)
        assert warm.pop()
        assert warm.schedule() == before
        # A pop past the build point reports the state unusable.
        assert not warm.pop()

    def test_latency_raise_is_repaired(self):
        ddg = figure2_dag().with_bottom()
        warm = IncrementalListSchedule(ddg)
        edge = next(e for e in ddg.edges() if e.is_serial)
        raised = Edge(edge.src, edge.dst, edge.latency + 7, DependenceKind.SERIAL, None)
        ddg.add_edge(raised)
        warm.reschedule([edge.dst])
        rtype = ddg.register_types()[0]
        assert warm.schedule() == _keep_alive_schedule_uncached(
            ddg, rtype, context_for(ddg)
        )


class TestCounterSurfacing:
    """The new engine counters ride in the reduction report details."""

    def test_counters_in_details(self):
        from repro.reduction import reduce_saturation_heuristic

        ddg = random_superblock(operations=60, seed=3)
        result = reduce_saturation_heuristic(ddg, INT, 6, engine="incremental")
        stats = result.details["engine_stats"]
        for counter in (
            "dv_rebuilds",
            "dv_reuses",
            "dv_patches",
            "pair_verdicts_reused",
            "schedule_repairs",
        ):
            assert counter in stats, counter
        timings = stats["stage_timings"]
        for stage in ("pair_scan", "dv_patch", "dv_rebuild", "keep_alive_repair"):
            assert stage in timings and timings[stage] >= 0.0
