"""Property-based tests (hypothesis) for the core invariants of the framework.

Random DDGs are generated from seeds through the library's own seeded
generators, which keeps the strategy space small while still exploring a
wide variety of graph shapes.  The invariants checked here are the ones the
paper's correctness arguments rest on.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st


from repro.analysis import (
    critical_path_length,
    is_antichain,
    maximum_antichain,
    maximum_antichain_size,
    minimum_chain_cover_size,
    transitive_closure_pairs,
)
from repro.codes.generator import layered_random_ddg, random_loop_body
from repro.core import asap_schedule, register_need, sequential_schedule
from repro.core.lifetime import value_lifetimes
from repro.core.schedule import list_schedule_priority
from repro.core.types import INT
from repro.ilp import IntegerProgram, LinExpr, add_max_equality, solve
from repro.saturation import (
    greedy_saturation,
    killed_graph,
    killing_function_from_schedule,
    potential_killers_map,
    saturation_bounds,
)

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

small_ddgs = st.builds(
    layered_random_ddg,
    nodes=st.integers(6, 16),
    layers=st.integers(2, 4),
    edge_probability=st.floats(0.15, 0.6),
    max_latency=st.integers(1, 5),
    value_probability=st.floats(0.5, 1.0),
    seed=st.integers(0, 10_000),
)

loop_ddgs = st.builds(
    random_loop_body,
    operations=st.integers(6, 18),
    ilp_degree=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)


class TestScheduleProperties:
    @_SETTINGS
    @given(small_ddgs)
    def test_asap_and_sequential_schedules_are_valid(self, ddg):
        g = ddg.with_bottom()
        assert asap_schedule(g).is_valid(g)
        assert sequential_schedule(g).is_valid(g)

    @_SETTINGS
    @given(small_ddgs, st.integers(0, 1000))
    def test_any_priority_list_schedule_is_valid(self, ddg, salt):
        g = ddg.with_bottom()
        s = list_schedule_priority(g, priority=lambda v: hash((v, salt)) % 17)
        assert s.is_valid(g)

    @_SETTINGS
    @given(small_ddgs)
    def test_asap_makespan_equals_critical_path(self, ddg):
        g = ddg.with_bottom()
        assert asap_schedule(g).makespan == critical_path_length(g)


class TestLifetimeProperties:
    @_SETTINGS
    @given(small_ddgs)
    def test_interference_is_symmetric_and_irreflexive(self, ddg):
        g = ddg.with_bottom()
        s = asap_schedule(g)
        intervals = value_lifetimes(g, s, INT)
        for a in intervals:
            assert not a.interferes(a) or not a.is_empty
            for b in intervals:
                assert a.interferes(b) == b.interferes(a)

    @_SETTINGS
    @given(small_ddgs)
    def test_register_need_never_exceeds_value_count(self, ddg):
        g = ddg.with_bottom()
        s = asap_schedule(g)
        assert 0 <= register_need(g, s, INT) <= len(g.values(INT))


class TestSaturationProperties:
    @_SETTINGS
    @given(small_ddgs)
    def test_bounds_sandwich_greedy(self, ddg):
        bounds = saturation_bounds(ddg, INT)
        greedy = greedy_saturation(ddg, INT)
        assert bounds.lower <= bounds.upper
        assert greedy.rs <= bounds.upper
        # the greedy value is itself a valid lower bound of the saturation
        assert greedy.rs >= 0

    @_SETTINGS
    @given(loop_ddgs)
    def test_greedy_at_least_any_schedule_need(self, ddg):
        g = ddg.with_bottom()
        for rtype in g.register_types():
            greedy = greedy_saturation(ddg, rtype)
            assert greedy.rs >= register_need(g, asap_schedule(g), rtype)

    @_SETTINGS
    @given(small_ddgs)
    def test_killing_function_from_schedule_is_valid(self, ddg):
        g = ddg.with_bottom()
        kf = killing_function_from_schedule(g, asap_schedule(g), INT)
        pk = potential_killers_map(g, INT)
        for value, killer in kf.items():
            assert killer in pk[value]
        assert killed_graph(g, kf).is_acyclic()

    @_SETTINGS
    @given(small_ddgs)
    def test_saturating_values_form_a_set_of_distinct_values(self, ddg):
        result = greedy_saturation(ddg, INT)
        assert len(set(result.saturating_values)) == len(result.saturating_values)
        assert len(result.saturating_values) == result.rs


class TestAntichainProperties:
    poset = st.integers(3, 9).flatmap(
        lambda n: st.tuples(
            st.just(list(range(n))),
            st.sets(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                    lambda p: p[0] < p[1]
                ),
                max_size=n * 2,
            ),
        )
    )

    @_SETTINGS
    @given(poset)
    def test_antichain_is_antichain_and_duality_holds(self, data):
        elements, raw_pairs = data
        # transitive closure of the random relation
        pairs = set(raw_pairs)
        changed = True
        while changed:
            changed = False
            for (a, b) in list(pairs):
                for (c, d) in list(pairs):
                    if b == c and (a, d) not in pairs:
                        pairs.add((a, d))
                        changed = True
        anti = maximum_antichain(elements, pairs)
        assert is_antichain(anti, pairs)
        assert len(anti) == maximum_antichain_size(elements, pairs)
        assert len(anti) == minimum_chain_cover_size(elements, pairs)

    @_SETTINGS
    @given(small_ddgs)
    def test_ddg_width_at_most_node_count(self, ddg):
        pairs = transitive_closure_pairs(ddg)
        width = maximum_antichain_size(ddg.nodes(), pairs)
        assert 1 <= width <= ddg.n


@pytest.mark.needs_ilp_solver
class TestILPProperties:
    @_SETTINGS
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=4))
    def test_max_linearization_matches_python_max(self, targets):
        m = IntegerProgram("pmax")
        terms = []
        for i, t in enumerate(targets):
            x = m.add_integer(f"x{i}", 0, 25)
            m.add_eq(x, t)
            terms.append(x)
        z = m.add_integer("z", 0, 30)
        add_max_equality(m, z, terms, "mx")
        m.minimize(z)
        assert solve(m).int_value("z") == max(targets)

    @_SETTINGS
    @given(
        st.integers(0, 8), st.integers(0, 8), st.integers(0, 8), st.integers(0, 8)
    )
    def test_small_knapsack_optimal(self, a, b, ca, cb):
        # maximize a*x + b*y subject to x + y <= 5 with 0 <= x,y <= 4
        m = IntegerProgram("knap")
        x = m.add_integer("x", 0, 4)
        y = m.add_integer("y", 0, 4)
        m.add_le(x + y, 5)
        m.maximize(a * x + b * y)
        sol = solve(m)
        brute = max(
            a * i + b * j for i in range(5) for j in range(5) if i + j <= 5
        )
        assert round(sol.objective) == brute
