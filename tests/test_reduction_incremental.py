"""Property tests pinning the incremental reduction engine to the from-scratch loop.

The :class:`~repro.reduction.session.ReductionSession` exists purely for
speed: it mutates one working DDG in place and patches analyses in the
dirty region instead of recomputing them.  Nothing it reports may differ
from the historic copy-per-iteration loop.  These tests enforce that over
random DAG populations and the paper kernels, plus the undo contract: a
popped serialization must restore the *exact* prior analysis state.
"""

from __future__ import annotations

import pytest

from repro.analysis.context import context_for
from repro.codes.generator import (
    layered_random_ddg,
    random_expression_forest,
    random_loop_body,
    random_superblock,
)
from repro.codes.kernels import figure2_dag
from repro.codes.suite import kernel_suite
from repro.core.types import INT, Value
from repro.reduction import (
    ReductionSession,
    reduce_saturation_heuristic,
    reduce_saturation_multi_budget,
)
from repro.saturation import greedy_saturation
from repro.saturation.incremental import IncrementalAnalysis


def _normalize(result):
    """Everything a ReductionResult reports except wall time and engine tags."""

    details = {
        k: v for k, v in result.details.items() if k not in ("engine", "engine_stats")
    }
    return (
        result.rtype,
        result.target,
        result.success,
        result.original_rs,
        result.achieved_rs,
        result.added_edges,
        result.critical_path_before,
        result.critical_path_after,
        result.method,
        result.optimal,
        details,
        result.extended_ddg.name,
        sorted(
            (e.src, e.dst, e.latency, e.kind.value, e.rtype)
            for e in result.extended_ddg.edges()
        ),
    )


def _both_engines(ddg, rtype, budget, **kwargs):
    scratch = reduce_saturation_heuristic(
        ddg.copy(), rtype, budget, engine="from-scratch", **kwargs
    )
    incremental = reduce_saturation_heuristic(
        ddg.copy(), rtype, budget, engine="incremental", **kwargs
    )
    return scratch, incremental


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_layered_random_dags(self, seed):
        ddg = layered_random_ddg(
            nodes=14 + seed, layers=3 + seed % 3,
            edge_probability=0.3 + 0.02 * seed, seed=seed,
        )
        for budget in (2, 4):
            scratch, incremental = _both_engines(ddg, INT, budget)
            assert _normalize(scratch) == _normalize(incremental)

    @pytest.mark.parametrize("seed", range(6))
    def test_loop_bodies_all_register_types(self, seed):
        ddg = random_loop_body(operations=15 + seed, ilp_degree=2 + seed % 3, seed=seed)
        for rtype in ddg.register_types():
            scratch, incremental = _both_engines(ddg, rtype, 3)
            assert _normalize(scratch) == _normalize(incremental)

    @pytest.mark.parametrize("seed", range(4))
    def test_expression_forests(self, seed):
        ddg = random_expression_forest(trees=2 + seed % 3, depth=2 + seed % 2, seed=seed)
        rtype = ddg.register_types()[0]
        scratch, incremental = _both_engines(ddg, rtype, 2)
        assert _normalize(scratch) == _normalize(incremental)

    def test_superblock_tier(self):
        ddg = random_superblock(operations=60, seed=3)
        scratch, incremental = _both_engines(ddg, INT, 6)
        assert _normalize(scratch) == _normalize(incremental)
        assert incremental.details["engine"] == "incremental"
        assert scratch.details["engine"] == "from-scratch"

    def test_all_kernels(self):
        for entry in kernel_suite():
            for rtype in entry.ddg.register_types():
                scratch, incremental = _both_engines(entry.ddg, rtype, 3)
                assert _normalize(scratch) == _normalize(incremental), entry.name

    def test_sequential_mode(self):
        ddg = figure2_dag()
        scratch, incremental = _both_engines(ddg, INT, 3, mode="sequential")
        assert _normalize(scratch) == _normalize(incremental)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            reduce_saturation_heuristic(figure2_dag(), INT, 3, engine="magic")

    def test_skipped_pair_counts_reported(self):
        ddg = layered_random_ddg(nodes=24, layers=4, seed=11)
        scratch, incremental = _both_engines(ddg, INT, 3)
        for result in (scratch, incremental):
            assert "skipped_implied_pairs" in result.details
            assert result.details["skipped_implied_pairs"] >= 0
        assert (
            scratch.details["skipped_implied_pairs"]
            == incremental.details["skipped_implied_pairs"]
        )


class TestMultiBudgetWarmStart:
    """One warm session across a descending budget ladder == standalone runs."""

    @pytest.mark.parametrize("seed", range(6))
    def test_per_budget_results_identical_to_standalone(self, seed):
        ddg = layered_random_ddg(nodes=16 + seed, layers=4, seed=seed)
        budgets = (2, 3, 5)
        for engine in ("incremental", "from-scratch"):
            multi = reduce_saturation_multi_budget(
                ddg.copy(), INT, budgets, engine=engine
            )
            assert sorted(multi) == sorted(budgets)
            for budget in budgets:
                solo = reduce_saturation_heuristic(
                    ddg.copy(), INT, budget, engine=engine
                )
                assert _normalize(multi[budget]) == _normalize(solo), (engine, budget)

    def test_superblock_budget_ladder(self):
        ddg = random_superblock(operations=60, seed=3)
        multi = reduce_saturation_multi_budget(ddg.copy(), INT, (4, 6, 8))
        for budget in (4, 6, 8):
            solo = reduce_saturation_heuristic(ddg.copy(), INT, budget)
            assert _normalize(multi[budget]) == _normalize(solo), budget
        # The smaller the budget, the longer its serialization prefix.
        assert len(multi[8].added_edges) <= len(multi[6].added_edges)
        assert len(multi[6].added_edges) <= len(multi[4].added_edges)
        # ... and the larger budget's arcs are literally a prefix.
        assert multi[4].added_edges[: len(multi[8].added_edges)] == multi[8].added_edges

    def test_trivial_and_empty_budgets(self):
        ddg = figure2_dag()
        rs = greedy_saturation(ddg, INT).rs
        multi = reduce_saturation_multi_budget(ddg, INT, (rs + 2,))
        assert multi[rs + 2].success
        assert multi[rs + 2].added_edges == ()
        assert reduce_saturation_multi_budget(ddg, INT, ()) == {}
        with pytest.raises(ValueError):
            reduce_saturation_multi_budget(ddg, INT, (0, 3))


class TestResetToDepth:
    def test_reset_rewinds_to_exact_prefix_state(self):
        ddg = layered_random_ddg(nodes=18, layers=4, seed=4)
        session = ReductionSession(ddg, INT)
        fingerprints = [session.analysis_fingerprint()]
        for _ in range(3):
            sat = session.saturation()
            if not _push_one(session, sat):
                break
            fingerprints.append(session.analysis_fingerprint())
        assert session.depth >= 2, "population must admit two serializations"
        session.reset_to_depth(1)
        assert session.depth == 1
        assert session.analysis_fingerprint() == fingerprints[1]
        session.reset_to_depth(0)
        assert session.depth == 0
        assert session.analysis_fingerprint() == fingerprints[0]

    @pytest.mark.parametrize("seed", range(8))
    def test_reset_with_states_retargeted_mid_stack(self, seed):
        """States patched/rebuilt mid-stack are dropped on rewind, then rebuilt.

        A push whose serialization changes killing functions makes the next
        saturation re-target candidate DV states *above* depth 0 (patch or
        rebuild, either way their killed mirrors have the pushed arcs baked
        into the new baseline).  ``reset_to_depth`` must discard exactly
        those states, restore the value-level analysis state bit-for-bit,
        and the following saturation must equal a cold run on the restored
        graph.
        """

        ddg = layered_random_ddg(nodes=18 + seed, layers=4, seed=70 + seed)
        session = ReductionSession(ddg, INT, prune_redundant=False)
        fingerprint0 = session.analysis_fingerprint()
        sat = session.saturation()
        pushes = 0
        while pushes < 3:
            if not _push_one(session, sat):
                break
            pushes += 1
            sat = session.saturation()  # may re-target states mid-stack
        if pushes < 2:
            pytest.skip("population admits too few serializations")
        saturation = session._saturation
        mid_stack = {
            label
            for label, state in saturation._candidate_states.items()
            if len(state._sync_frames) < session.depth
        }
        session.reset_to_depth(0)
        assert session.depth == 0
        # Re-targeted states cannot replay frames below their new baseline;
        # they must be gone before the next saturation recreates them.
        for label in mid_stack:
            assert label not in saturation._candidate_states, label
        assert session.analysis_fingerprint() == fingerprint0
        sat_back = session.saturation()
        cold = greedy_saturation(session.ddg.copy(), INT)
        assert sat_back.rs == cold.rs
        assert sat_back.saturating_values == cold.saturating_values
        assert sat_back.killing_function == cold.killing_function

    def test_reset_to_current_depth_is_noop(self):
        session = ReductionSession(figure2_dag(), INT)
        session.reset_to_depth(0)
        assert session.depth == 0

    def test_reset_beyond_depth_raises(self):
        session = ReductionSession(figure2_dag(), INT)
        with pytest.raises(IndexError):
            session.reset_to_depth(1)
        with pytest.raises(IndexError):
            session.reset_to_depth(-1)


class TestCandidateStatePersistence:
    """Candidate DV states survive pop via their undo frames (no rebuild storm)."""

    def test_pop_reuses_states_when_killing_functions_survive(self):
        """A push leaving every killing function intact must not cost rebuilds.

        A dominated duplicate of an existing arc is a no-op push: the graph,
        the potential killers and every candidate killing function are
        unchanged, so both the post-push and the post-pop saturation must
        run entirely on reused (frame-replayed) DV states.  A push that
        *does* change killing functions rebuilds states mid-stack, and those
        are correctly discarded on pop instead (see
        ``test_push_pop_push_matches_cold_runs``).
        """

        from repro.core.graph import Edge
        from repro.core.types import DependenceKind

        ddg = layered_random_ddg(nodes=20, layers=4, seed=6)
        session = ReductionSession(ddg, INT)
        sat = session.saturation()
        existing = next(e for e in session.ddg.edges() if e.latency >= 0)
        noop = Edge(existing.src, existing.dst, 0, DependenceKind.SERIAL, None)
        session.push([noop])
        session.saturation()
        rebuilds_before_pop = session.saturation_stats["dv_rebuilds"]
        assert session.saturation_stats["dv_reuses"] > 0
        session.pop()
        sat_after = session.saturation()
        assert sat_after.rs == sat.rs
        assert tuple(sat_after.saturating_values) == tuple(sat.saturating_values)
        stats = session.saturation_stats
        assert stats["dv_rebuilds"] == rebuilds_before_pop

    @pytest.mark.parametrize("seed", range(4))
    def test_push_pop_push_matches_cold_runs(self, seed):
        ddg = layered_random_ddg(nodes=17 + seed, layers=4, seed=30 + seed)
        session = ReductionSession(ddg, INT, prune_redundant=False)
        for _ in range(2):
            sat = session.saturation()
            cold = greedy_saturation(session.ddg.copy(), INT)
            assert sat.rs == cold.rs
            assert sat.saturating_values == cold.saturating_values
            if not _push_one(session, sat):
                break
            session.pop()
            # Warm state after the undo must equal a cold run on the graph...
            sat_back = session.saturation()
            cold_back = greedy_saturation(session.ddg.copy(), INT)
            assert sat_back.rs == cold_back.rs
            assert sat_back.saturating_values == cold_back.saturating_values
            assert sat_back.killing_function == cold_back.killing_function
            # ... and pushing again continues from the replayed frames.
            if not _push_one(session, sat_back):
                break


class TestSessionSaturation:
    """The session's warm Greedy-k must equal a cold run on an equal graph."""

    @pytest.mark.parametrize("seed", range(6))
    def test_saturation_matches_after_pushes(self, seed):
        ddg = layered_random_ddg(nodes=16 + seed, layers=4, seed=seed)
        session = ReductionSession(ddg, INT, prune_redundant=False)
        for _ in range(3):
            sat = session.saturation()
            cold = greedy_saturation(session.ddg.copy(), INT)
            assert sat.rs == cold.rs
            assert sat.saturating_values == cold.saturating_values
            assert sat.killing_function == cold.killing_function
            pushed = _push_one(session, sat)
            if not pushed:
                break

    def test_proto_edge_cache_survives_pushes(self):
        ddg = layered_random_ddg(nodes=18, layers=4, seed=2)
        session = ReductionSession(ddg, INT)
        sat = session.saturation()
        values = list(sat.saturating_values)
        if len(values) >= 2:
            u, v = values[0], values[1]
            first = session.legal_serialization(u, v)
            if first:
                session.push(first)
                # The static skeleton is cached; the filter re-applies.
                again = session.legal_serialization(u, v)
                assert again == []


def _push_one(session, sat):
    for u in sat.saturating_values:
        for v in sat.saturating_values:
            if u == v:
                continue
            edges = session.legal_serialization(u, v)
            if edges:
                session.push(edges)
                return True
    return False


class TestUndoSafety:
    @pytest.mark.parametrize("seed", range(5))
    def test_pop_restores_exact_analysis_state(self, seed):
        ddg = layered_random_ddg(nodes=15 + seed, layers=4, seed=seed)
        session = ReductionSession(ddg, INT)
        fingerprints = [session.analysis_fingerprint()]
        pushes = 0
        for _ in range(3):
            sat = session.saturation()
            if not _push_one(session, sat):
                break
            pushes += 1
            fingerprints.append(session.analysis_fingerprint())
        assert pushes >= 1, "population must admit at least one serialization"
        for expected in reversed(fingerprints[:-1]):
            session.pop()
            assert session.analysis_fingerprint() == expected

    def test_pop_restores_version_and_graph(self):
        ddg = figure2_dag()
        session = ReductionSession(ddg, INT)
        edges_before = sorted(
            (e.src, e.dst, e.latency, e.kind.value) for e in session.ddg.edges()
        )
        sat = session.saturation()
        assert _push_one(session, sat)
        session.pop()
        edges_after = sorted(
            (e.src, e.dst, e.latency, e.kind.value) for e in session.ddg.edges()
        )
        assert edges_before == edges_after

    def test_pop_on_empty_session_raises(self):
        session = ReductionSession(figure2_dag(), INT)
        with pytest.raises(IndexError):
            session.pop()

    def test_latency_upgrade_is_undone(self):
        """Replacing a weaker duplicate serial arc must be reversible."""

        ddg = figure2_dag()
        session = ReductionSession(ddg, INT, prune_redundant=False)
        g = session.ddg
        nodes = g.nodes()
        src, dst = nodes[0], None
        desc = context_for(g).descendants_map(include_self=False)
        for cand in nodes[1:]:
            if cand in desc[src]:
                dst = cand
                break
        assert dst is not None
        g.add_serial_edge(src, dst, latency=0)
        before = session.analysis_fingerprint()
        from repro.core.graph import Edge
        from repro.core.types import DependenceKind

        session.push([Edge(src, dst, 5, DependenceKind.SERIAL, None)])
        assert g.best_latency_between(src, dst) >= 5
        session.pop()
        assert session.analysis_fingerprint() == before


class TestIncrementalAnalysisExactness:
    """The patched analyses must equal from-scratch recomputation."""

    @pytest.mark.parametrize("seed", range(6))
    def test_descendants_and_lp_rows_after_pushes(self, seed):
        from repro.analysis import graphalgo
        from repro.core.graph import Edge
        from repro.core.types import DependenceKind

        ddg = layered_random_ddg(nodes=14 + seed, layers=4, seed=seed)
        analysis = IncrementalAnalysis(ddg)
        # Warm a few rows before mutating.
        nodes = ddg.nodes()
        for node in nodes[:5]:
            analysis.lp_row(node)
        desc = context_for(ddg).descendants_map(include_self=False)
        candidates = [
            (u, v)
            for u in nodes
            for v in nodes
            if u != v and u not in desc[v] and v not in desc[u]
        ]
        pushed = 0
        for u, v in candidates[:3]:
            edge = Edge(u, v, 1 + pushed, DependenceKind.SERIAL, None)
            if not analysis.remains_acyclic_with_edges([edge]):
                continue
            analysis.push([edge])
            pushed += 1
            fresh_desc = graphalgo.descendants_map(ddg, include_self=True)
            assert analysis.descendants_incl() == fresh_desc
            for node in nodes[:5]:
                assert analysis.lp_row(node) == graphalgo.longest_paths_from(ddg, node)
        assert pushed >= 1

    def test_injected_context_analyses_match(self):
        ddg = layered_random_ddg(nodes=16, layers=4, seed=9)
        session = ReductionSession(ddg, INT)
        sat = session.saturation()
        assert _push_one(session, sat)
        from repro.analysis import graphalgo

        g = session.ddg
        ctx = context_for(g)
        assert ctx.descendants_map(include_self=True) == graphalgo.descendants_map(
            g, include_self=True
        )
        assert ctx.descendants_map(include_self=False) == graphalgo.descendants_map(
            g, include_self=False
        )
