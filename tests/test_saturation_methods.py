"""Tests comparing the saturation methods: greedy heuristic, exact intLP, oracles, bounds."""

import pytest

from repro.codes.suite import kernel_suite
from repro.core import DDGBuilder, chain_ddg, fork_join_ddg, independent_chains_ddg, vliw, retarget
from repro.core.types import INT, FLOAT
from repro.saturation import (
    SaturationResult,
    build_rs_program,
    compute_saturation,
    exact_saturation,
    greedy_saturation,
    saturation_bounds,
    saturation_by_killing_enumeration,
    saturation_by_schedule_enumeration,
    trivially_within_budget,
)

SMALL_SHAPES = [
    ("chain4", chain_ddg(4), 1),
    ("fork3", fork_join_ddg(3), 3),
    ("fork5", fork_join_ddg(5), 5),
    ("chains2x3", independent_chains_ddg(2, 3), 2),
    ("chains3x2", independent_chains_ddg(3, 2), 3),
]


class TestAnalyticalShapes:
    @pytest.mark.parametrize("name,ddg,expected", SMALL_SHAPES, ids=[s[0] for s in SMALL_SHAPES])
    @pytest.mark.needs_ilp_solver
    def test_exact_matches_analytical(self, name, ddg, expected):
        assert exact_saturation(ddg, INT).rs == expected

    @pytest.mark.parametrize("name,ddg,expected", SMALL_SHAPES, ids=[s[0] for s in SMALL_SHAPES])
    def test_greedy_matches_analytical(self, name, ddg, expected):
        assert greedy_saturation(ddg, INT).rs == expected

    @pytest.mark.parametrize("name,ddg,expected", SMALL_SHAPES, ids=[s[0] for s in SMALL_SHAPES])
    def test_schedule_enumeration_matches(self, name, ddg, expected):
        assert saturation_by_schedule_enumeration(ddg, INT).rs == expected

    @pytest.mark.needs_ilp_solver
    def test_figure2_saturation_is_four(self, figure2):
        assert exact_saturation(figure2, INT).rs == 4
        assert greedy_saturation(figure2, INT).rs == 4

    def test_empty_type_returns_zero(self, figure2):
        assert exact_saturation(figure2, FLOAT).rs == 0
        assert greedy_saturation(figure2, FLOAT).rs == 0


@pytest.mark.needs_ilp_solver
class TestSandwichInvariants:
    @pytest.mark.parametrize(
        "entry",
        [e for e in kernel_suite() if e.size <= 20],
        ids=lambda e: e.name,
    )
    def test_greedy_between_bounds_and_below_exact(self, entry):
        for rtype in entry.ddg.register_types():
            bounds = saturation_bounds(entry.ddg, rtype)
            greedy = greedy_saturation(entry.ddg, rtype)
            exact = exact_saturation(entry.ddg, rtype, time_limit=60)
            assert bounds.lower <= exact.rs <= bounds.upper
            assert greedy.rs <= exact.rs, "heuristic must be a valid lower bound"
            assert exact.rs - greedy.rs <= 1, "paper: maximal empirical error is one register"

    def test_witness_schedule_realises_exact_value(self, figure2):
        from repro.core.lifetime import register_need

        result = exact_saturation(figure2, INT)
        assert result.witness_schedule is not None
        need = register_need(result.witness_schedule and _bottom(figure2), result.witness_schedule, INT)
        assert need == result.rs

    def test_saturating_values_count_matches_rs(self, figure2):
        result = exact_saturation(figure2, INT)
        assert len(result.saturating_values) == result.rs
        greedy = greedy_saturation(figure2, INT)
        assert len(greedy.saturating_values) == greedy.rs


def _bottom(ddg):
    return ddg.with_bottom()


class TestOracles:
    def test_killing_enumeration_matches_exact_on_small_graphs(self):
        for name, ddg, expected in SMALL_SHAPES[:3]:
            result = saturation_by_killing_enumeration(ddg, INT)
            assert result.rs == expected

    def test_schedule_enumeration_truncation_flagged(self, fork4_ddg):
        result = saturation_by_schedule_enumeration(fork4_ddg, INT, limit=3)
        assert not result.optimal and result.details["truncated"]

    @pytest.mark.needs_ilp_solver
    def test_compute_saturation_dispatch(self, figure2):
        assert compute_saturation(figure2, INT, method="greedy").rs == 4
        assert compute_saturation(figure2, INT, method="exact").rs == 4
        assert compute_saturation(figure2, INT, method="killing-enum").rs == 4
        with pytest.raises(ValueError):
            compute_saturation(figure2, INT, method="magic")


class TestBounds:
    def test_trivial_budget_check(self, figure2):
        assert trivially_within_budget(figure2, INT, 4)
        assert not trivially_within_budget(figure2, INT, 3)

    def test_bounds_ordering(self, figure2):
        b = saturation_bounds(figure2, INT)
        assert 1 <= b.lower <= b.upper == 4
        assert b.is_tight == (b.lower == b.upper)

    def test_bounds_empty_type(self, figure2):
        b = saturation_bounds(figure2, FLOAT)
        assert b.lower == b.upper == 0


class TestModelSize:
    def test_rs_program_size_is_quadratic(self):
        ddg = fork_join_ddg(6)
        program, info = build_rs_program(ddg, INT, prune_redundant_arcs=False,
                                         prune_noninterfering_pairs=False)
        n = info.ddg.n
        m = info.ddg.m
        stats = program.statistics()
        assert stats["variables"] <= 8 * n * n
        assert stats["constraints"] <= 8 * (m + n * n)

    def test_pruning_reduces_model(self, chain5_ddg):
        full, _ = build_rs_program(chain5_ddg, INT, prune_redundant_arcs=False,
                                   prune_noninterfering_pairs=False)
        pruned, _ = build_rs_program(chain5_ddg, INT)
        assert pruned.num_variables <= full.num_variables
        assert pruned.num_constraints < full.num_constraints

    @pytest.mark.needs_ilp_solver
    def test_pruning_preserves_optimum(self):
        for name, ddg, expected in SMALL_SHAPES:
            assert exact_saturation(ddg, INT, prune=False).rs == expected


@pytest.mark.needs_ilp_solver
class TestVLIWOffsets:
    def test_saturation_with_offsets_still_bounded(self):
        ddg = retarget(fork_join_ddg(4, latency=3), vliw())
        exact = exact_saturation(ddg, INT)
        greedy = greedy_saturation(ddg, INT)
        assert 1 <= greedy.rs <= exact.rs <= 5
