"""Property tests for the persistent antichain engine.

:class:`~repro.analysis.antichain.PersistentAntichain` keeps the DV-DAG
closure as a running family of bitsets and the Hopcroft--Karp matching alive
across monotone edge insertions.  Its whole value rests on two claims, both
pinned here over random DAG populations:

* at every step of any insertion sequence it reports the **byte-identical**
  antichain to the from-scratch reference
  (:func:`~repro.analysis.antichain.antichain_indices_from_rows`, the exact
  pipeline the incremental saturation engine ran per call before the
  persistent engine existed) -- this is the Dulmage--Mendelsohn invariance
  of the Koenig sets across maximum matchings, checked empirically;
* the Dilworth duality ``|antichain| = n - |maximum matching|`` holds at
  every step, and a push/pop round trip restores the *exact* prior state
  (closure rows, matching arrays, cached antichain).
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.antichain import (
    PersistentAntichain,
    antichain_indices_from_rows,
    brute_force_maximum_antichain,
    is_antichain,
    maximum_antichain,
)


def _random_dag_pairs(n: int, rng: random.Random):
    """All forward pairs of a random vertex order, shuffled."""

    perm = list(range(n))
    rng.shuffle(perm)
    pos = {v: i for i, v in enumerate(perm)}
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v and pos[u] < pos[v]]
    rng.shuffle(pairs)
    return pairs


def _rows_from(n, pairs):
    rows = [0] * n
    for u, v in pairs:
        rows[u] |= 1 << v
    return rows


def _closure_pairs(engine: PersistentAntichain, n: int):
    return {
        (i, j)
        for i in range(n)
        for j in range(n)
        if (engine.closure_row(i) >> j) & 1
    }


class TestMonotoneInsertion:
    @pytest.mark.parametrize("seed", range(12))
    def test_identical_to_from_scratch_at_every_step(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 16)
        pairs = _random_dag_pairs(n, rng)
        split = rng.randint(0, len(pairs))
        rows = _rows_from(n, pairs[:split])
        engine = PersistentAntichain(n, rows=list(rows))
        assert not engine.cyclic
        assert engine.antichain_indices() == antichain_indices_from_rows(rows)
        for u, v in pairs[split:]:
            rows[u] |= 1 << v
            assert engine.insert(u, v)
            got = engine.antichain_indices()
            assert got == antichain_indices_from_rows(rows)
            # Dilworth duality on the running state.
            assert len(got) == n - engine.matching_size()
            assert engine.cardinality() == len(got)

    @pytest.mark.parametrize("seed", range(6))
    def test_antichain_is_maximum(self, seed):
        """The reported set is an antichain of the closure and has optimal size."""

        rng = random.Random(100 + seed)
        n = rng.randint(2, 12)
        pairs = _random_dag_pairs(n, rng)
        keep = pairs[: rng.randint(0, len(pairs))]
        rows = _rows_from(n, keep)
        engine = PersistentAntichain(n, rows=rows)
        got = engine.antichain_indices()
        closure = _closure_pairs(engine, n)
        assert is_antichain(got, closure)
        assert len(got) == brute_force_maximum_antichain(list(range(n)), closure)
        # And the generic pair-set entry point agrees on the same closure.
        assert len(maximum_antichain(list(range(n)), closure)) == len(got)

    def test_implied_insert_is_noop(self):
        engine = PersistentAntichain(3, rows=[0b010, 0b100, 0])  # 0<1<2
        before = [engine.closure_row(i) for i in range(3)]
        assert engine.insert(0, 2)  # already in the closure
        assert [engine.closure_row(i) for i in range(3)] == before

    def test_cycle_detection_and_undo(self):
        engine = PersistentAntichain(3, rows=[0b010, 0b100, 0])  # 0<1<2
        antichain = engine.antichain_indices()
        engine.push()
        assert not engine.insert(2, 0)  # closes the cycle
        assert engine.cyclic
        assert engine.antichain_indices() is None
        assert engine.cardinality() is None
        engine.pop()
        assert not engine.cyclic
        assert engine.antichain_indices() == antichain

    def test_cyclic_seed(self):
        engine = PersistentAntichain(2, rows=[0b10, 0b01])
        assert engine.cyclic
        assert engine.antichain_indices() is None

    def test_empty_ground_set(self):
        engine = PersistentAntichain(0, rows=[])
        assert engine.antichain_indices() == []
        assert engine.cardinality() == 0


class TestPushPop:
    @pytest.mark.parametrize("seed", range(10))
    def test_round_trip_restores_exact_state(self, seed):
        rng = random.Random(1000 + seed)
        n = rng.randint(2, 14)
        pairs = _random_dag_pairs(n, rng)
        split = rng.randint(0, len(pairs))
        engine = PersistentAntichain(n, rows=_rows_from(n, pairs[:split]))
        engine.antichain_indices()  # warm the matching before framing
        snapshots = []
        for u, v in pairs[split:]:
            if rng.random() < 0.4:
                match_l, match_r = engine.matching()
                snapshots.append(
                    (
                        [engine.closure_row(i) for i in range(n)],
                        match_l,
                        match_r,
                        engine.antichain_indices(),
                        engine.depth,
                    )
                )
                engine.push()
            engine.insert(u, v)
            if rng.random() < 0.5:
                engine.antichain_indices()  # interleave repairs with inserts
        while engine.depth:
            engine.pop()
            closure, match_l, match_r, antichain, depth = snapshots.pop()
            assert engine.depth == depth
            assert [engine.closure_row(i) for i in range(n)] == closure
            # The exact matching is restored, not merely an equivalent one.
            got_l, got_r = engine.matching()
            assert (got_l, got_r) == (match_l, match_r)
            assert engine.antichain_indices() == antichain

    def test_nested_frames_unwind_in_order(self):
        engine = PersistentAntichain(4, rows=[0, 0, 0, 0])
        assert len(engine.antichain_indices()) == 4
        engine.push()
        engine.insert(0, 1)
        assert len(engine.antichain_indices()) == 3
        engine.push()
        engine.insert(2, 3)
        assert len(engine.antichain_indices()) == 2
        engine.pop()
        assert len(engine.antichain_indices()) == 3
        engine.pop()
        assert len(engine.antichain_indices()) == 4


class TestDeepChains:
    def test_long_chain_does_not_recurse(self):
        """A 600-element chain used to blow the recursion limit in the DFS."""

        n = 600
        rows = [1 << (i + 1) if i + 1 < n else 0 for i in range(n)]
        engine = PersistentAntichain(n, rows=rows)
        assert engine.antichain_indices() == [n - 1] == antichain_indices_from_rows(rows)
        assert engine.cardinality() == 1

    def test_long_chain_generic_entry_point(self):
        """The shared list-based Hopcroft--Karp walks deep graphs iteratively.

        The split graph of a sparse 1200-element chain admits augmenting
        paths ~1199 vertices deep; the historic recursive DFS blew Python's
        default recursion limit there (the raw relation also exercises the
        documented non-closed behaviour: the result has minimum-chain-cover
        size, here a single chain).
        """

        n = 1200
        elements = list(range(n))
        pairs = {(i, i + 1) for i in range(n - 1)}
        assert len(maximum_antichain(elements, pairs)) == 1
        closed = {(i, j) for i in range(120) for j in range(i + 1, 120)}
        assert len(maximum_antichain(list(range(120)), closed)) == 1
