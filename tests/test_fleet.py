"""Fleet tests: broker/worker leases, chaos matrix, degradation ladder.

The contract under test extends the chaos invariant across process
boundaries: however the network drops, delays, duplicates, or partitions
result messages -- and however workers die mid-lease -- a
``BatchEngine("fleet")`` batch completes with results (and reports)
byte-identical to a serial fault-free run, every item terminal through an
:class:`ItemOutcome`, nothing lost, nothing double-counted.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.analysis.store import ResultStore
from repro.codes import benchmark_suite
from repro.core import superscalar
from repro.errors import ConfigurationError, SolverError
from repro.experiments import (
    BatchEngine,
    SupervisorConfig,
    run_pipeline_experiment,
)
from repro.fleet import FleetConfig, FleetError, run_fleet
import repro.fleet.broker as broker_mod

# Module-level workers so fleet worker processes can apply them.


def _square(x: int) -> int:
    return x * x


def _raise_solver_error(x: int) -> int:
    raise SolverError(f"no solution for {x}")


def _unpicklable_result(x: int):
    return lambda: x  # noqa: E731 - deliberately refuses to pickle


#: Generous per-attempt timeout -- fleet tests tune *leases* down instead.
_FLEET_SUP = SupervisorConfig(
    timeout=10.0, max_attempts=4, backoff_base=0.01, backoff_cap=0.05
)


@pytest.fixture
def fast_fleet_env(monkeypatch):
    """Short leases and fast heartbeats so fault recovery runs in ms."""

    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.setenv("REPRO_FLEET_LEASE", "0.6")
    monkeypatch.setenv("REPRO_FLEET_HEARTBEAT", "0.1")


# --------------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------------- #
class TestFleetConfig:
    def test_defaults_are_sane(self):
        config = FleetConfig()
        assert config.lease_seconds > config.heartbeat_seconds
        assert config.liveness_seconds >= 2 * config.heartbeat_seconds
        assert config.backoff(1) <= config.backoff(3) <= config.backoff_cap

    def test_inherits_retry_policy_from_supervisor(self):
        sup = SupervisorConfig(timeout=7.0, max_attempts=6, speculate=False)
        config = FleetConfig.from_environment(sup)
        assert config.timeout == 7.0
        assert config.max_attempts == 6
        assert config.steal is False
        back = config.to_supervisor_config()
        assert back.timeout == 7.0 and back.max_attempts == 6

    def test_environment_tunes_lease_and_heartbeat(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_LEASE", "2.5")
        monkeypatch.setenv("REPRO_FLEET_HEARTBEAT", "0.25")
        config = FleetConfig.from_environment(SupervisorConfig())
        assert config.lease_seconds == 2.5
        assert config.heartbeat_seconds == 0.25

    @pytest.mark.parametrize(
        "variable, value",
        [
            ("REPRO_FLEET_LEASE", "soon"),
            ("REPRO_FLEET_LEASE", "-2"),
            ("REPRO_FLEET_LEASE", "0"),
            ("REPRO_FLEET_HEARTBEAT", "often"),
            ("REPRO_FLEET_HEARTBEAT", "0"),
            ("REPRO_FLEET_RESPAWN", "-1"),
            ("REPRO_FLEET_RESPAWN", "many"),
        ],
    )
    def test_malformed_environment_names_the_variable(
        self, monkeypatch, variable, value
    ):
        monkeypatch.setenv(variable, value)
        with pytest.raises(ConfigurationError, match=variable):
            FleetConfig.from_environment(SupervisorConfig())

    def test_invalid_literals_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(lease_seconds=0.0)
        with pytest.raises(ValueError):
            FleetConfig(heartbeat_seconds=-1.0)
        with pytest.raises(ValueError):
            FleetConfig(max_attempts=0)


# --------------------------------------------------------------------------- #
# Clean runs
# --------------------------------------------------------------------------- #
class TestFleetBasics:
    def test_results_in_input_order(self, fast_fleet_env):
        engine = BatchEngine("fleet", workers=2, supervisor=_FLEET_SUP)
        results, outcomes = engine.map_with_outcomes(_square, list(range(8)))
        assert results == [x * x for x in range(8)]
        assert [o.index for o in outcomes] == list(range(8))
        assert all(o.status == "ok" and o.policy == "fleet" for o in outcomes)

    def test_empty_batch(self, fast_fleet_env):
        results, outcomes = run_fleet(_square, [], workers=3)
        assert results == [] and outcomes == []

    def test_from_spec(self):
        engine = BatchEngine.from_spec("fleet:3")
        assert engine.policy == "fleet" and engine.workers == 3

    def test_unknown_policy_still_rejected(self):
        with pytest.raises(ValueError):
            BatchEngine("armada")

    def test_store_rendezvous_and_warm_rerun(self, fast_fleet_env, tmp_path):
        store = ResultStore(tmp_path)
        engine = BatchEngine("fleet", workers=2, supervisor=_FLEET_SUP)
        key_fn = lambda x: (f"g{x}", {"x": x})  # noqa: E731
        results, outcomes = engine.map_with_outcomes(
            _square, list(range(6)), store=store, query="q", key_fn=key_fn
        )
        assert results == [x * x for x in range(6)]
        # Every result rendezvoused through the store as it arrived.
        assert store.get("g3", "q", {"x": 3}) == 9
        warm, warm_outcomes = engine.map_with_outcomes(
            _square, list(range(6)), store=store, query="q", key_fn=key_fn
        )
        assert warm == results
        assert all(o.status == "stored" for o in warm_outcomes)

    def test_item_failure_propagates_like_a_plain_loop(self, fast_fleet_env):
        engine = BatchEngine("fleet", workers=2, supervisor=_FLEET_SUP)
        with pytest.raises(SolverError):
            engine.map(_raise_solver_error, list(range(4)))

    def test_unpicklable_result_fails_fast(self, fast_fleet_env):
        engine = BatchEngine("fleet", workers=2, supervisor=_FLEET_SUP)
        t0 = time.monotonic()
        with pytest.raises(pickle.PickleError):
            engine.map(_unpicklable_result, list(range(3)))
        # Deterministic failure: no retry storm, no lease-expiry waits.
        assert time.monotonic() - t0 < 8.0


# --------------------------------------------------------------------------- #
# Chaos matrix
# --------------------------------------------------------------------------- #
class TestFleetChaos:
    def test_network_fault_matrix_keeps_results_exact(
        self, fast_fleet_env, monkeypatch
    ):
        items = list(range(10))
        reference = [x * x for x in items]
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "drop@1,dup@2,partition@3,leasekill@4,delay@5,drop:0.1,seed:7",
        )
        engine = BatchEngine("fleet", workers=3, supervisor=_FLEET_SUP)
        results, outcomes = engine.map_with_outcomes(_square, items)
        assert results == reference
        # Every item terminal, none lost, none double-counted.
        assert [o.index for o in outcomes] == items
        assert all(o.status == "ok" for o in outcomes)
        kinds = {e.kind for o in outcomes for e in o.faults}
        assert "net-drop" in kinds
        assert "net-dup" in kinds and "duplicate-dropped" in kinds
        assert "partition" in kinds
        assert "net-delay" in kinds
        # Drops, partitions and the mid-lease kill all force reattempts.
        assert any(o.attempts > 1 for o in outcomes)

    def test_worker_killed_mid_lease_is_reassigned(
        self, fast_fleet_env, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "leasekill@2,seed:11")
        engine = BatchEngine("fleet", workers=2, supervisor=_FLEET_SUP)
        results, outcomes = engine.map_with_outcomes(_square, list(range(5)))
        assert results == [x * x for x in range(5)]
        killed = outcomes[2]
        assert killed.status == "ok" and killed.attempts >= 2
        kinds = [e.kind for e in killed.faults]
        assert "worker-dead" in kinds or "lease-expired" in kinds

    def test_duplicate_delivery_is_verified_and_dropped(
        self, fast_fleet_env, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "dup@0,dup@3,seed:5")
        engine = BatchEngine("fleet", workers=2, supervisor=_FLEET_SUP)
        results, outcomes = engine.map_with_outcomes(_square, list(range(6)))
        assert results == [x * x for x in range(6)]
        for index in (0, 3):
            events = [e for e in outcomes[index].faults
                      if e.kind == "duplicate-dropped"]
            assert events and all("verified" in e.detail for e in events)

    def test_chaos_with_store_writes_each_key_once(
        self, fast_fleet_env, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_FAULTS", "dup@1,drop@2,leasekill@3,seed:9")
        store = ResultStore(tmp_path)
        engine = BatchEngine("fleet", workers=3, supervisor=_FLEET_SUP)
        key_fn = lambda x: (f"g{x}", {"x": x})  # noqa: E731
        results, _ = engine.map_with_outcomes(
            _square, list(range(8)), store=store, query="q", key_fn=key_fn
        )
        assert results == [x * x for x in range(8)]
        for x in range(8):
            assert store.get(f"g{x}", "q", {"x": x}) == x * x

    def test_fleet_chaos_report_byte_identical_to_serial_reference(
        self, fast_fleet_env, monkeypatch
    ):
        suite = benchmark_suite(max_size=10)
        machine = superscalar(int_registers=6, float_registers=6)
        kwargs = dict(suite=suite, machine=machine, registers=6,
                      compare_baseline=False)

        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        reference = run_pipeline_experiment(**kwargs)
        n_items = len(reference.outcomes)
        assert n_items >= 3

        monkeypatch.setenv(
            "REPRO_FAULTS", "drop@0,dup@1,leasekill@2,seed:17"
        )
        fleet_engine = BatchEngine("fleet", workers=3, supervisor=_FLEET_SUP)
        chaos = run_pipeline_experiment(engine=fleet_engine, **kwargs)

        assert chaos.to_table() == reference.to_table()
        assert len(chaos.item_outcomes) == n_items
        assert all(o.status == "ok" for o in chaos.item_outcomes)
        assert sum(1 for o in chaos.item_outcomes if o.faulted) >= 2


# --------------------------------------------------------------------------- #
# Degradation ladder
# --------------------------------------------------------------------------- #
class TestFleetDegradation:
    def test_unopenable_socket_degrades_to_local_pool(
        self, fast_fleet_env, monkeypatch
    ):
        def no_listener(*args, **kwargs):
            raise OSError("sockets disabled")

        monkeypatch.setattr(broker_mod, "Listener", no_listener)
        engine = BatchEngine("fleet", workers=2, supervisor=_FLEET_SUP)
        results, outcomes = engine.map_with_outcomes(_square, list(range(6)))
        assert results == [x * x for x in range(6)]
        for outcome in outcomes:
            assert outcome.status == "ok"
            assert outcome.policy in ("process", "thread", "serial")
            assert any(e.kind == "fleet-degraded" for e in outcome.faults)

    def test_collapsed_population_degrades_mid_batch(
        self, fast_fleet_env, monkeypatch
    ):
        # Every item's first attempt kills its worker and the respawn
        # budget is zero: the worker population collapses and the batch
        # must finish on the local ladder instead.
        monkeypatch.setenv(
            "REPRO_FAULTS",
            ",".join(f"leasekill@{i}" for i in range(4)) + ",seed:3",
        )
        monkeypatch.setenv("REPRO_FLEET_RESPAWN", "0")
        results, outcomes = run_fleet(
            _square, list(range(4)), workers=2, supervisor=_FLEET_SUP
        )
        assert results == [x * x for x in range(4)]
        kinds = {e.kind for o in outcomes for e in o.faults}
        assert "fleet-degraded" in kinds

    def test_fleet_error_is_transient(self):
        assert FleetError("substrate gone").retryable()


# --------------------------------------------------------------------------- #
# Degraded store rendezvous
# --------------------------------------------------------------------------- #
def test_degraded_run_still_writes_the_store(
    fast_fleet_env, monkeypatch, tmp_path
):
    def no_listener(*args, **kwargs):
        raise OSError("sockets disabled")

    monkeypatch.setattr(broker_mod, "Listener", no_listener)
    store = ResultStore(tmp_path)
    engine = BatchEngine("fleet", workers=2, supervisor=_FLEET_SUP)
    key_fn = lambda x: (f"g{x}", {"x": x})  # noqa: E731
    results, _ = engine.map_with_outcomes(
        _square, list(range(4)), store=store, query="q", key_fn=key_fn
    )
    assert results == [x * x for x in range(4)]
    assert store.get("g2", "q", {"x": 2}) == 4
