"""Tests for schedules, reference schedulers and lifetimes."""

import pytest

from repro.core import (
    BOTTOM,
    DDGBuilder,
    Schedule,
    asap_schedule,
    alap_schedule,
    chain_ddg,
    enumerate_schedules,
    fork_join_ddg,
    interference_graph,
    list_schedule_priority,
    register_need,
    register_need_all_types,
    sequential_schedule,
    value_lifetimes,
)
from repro.core.lifetime import LifetimeInterval, killing_date, max_simultaneously_alive
from repro.core.types import INT, Value
from repro.errors import ScheduleError


class TestScheduleObject:
    def test_validity(self, diamond_ddg):
        s = asap_schedule(diamond_ddg)
        assert s.is_valid(diamond_ddg)
        assert s.violations(diamond_ddg) == []

    def test_invalid_schedule_detected(self, diamond_ddg):
        bad = Schedule({n: 0 for n in diamond_ddg.nodes()})
        assert not bad.is_valid(diamond_ddg)
        with pytest.raises(ScheduleError):
            bad.check(diamond_ddg)

    def test_missing_node_detected(self, diamond_ddg):
        partial = Schedule({"a": 0})
        assert any("not scheduled" in v for v in partial.violations(diamond_ddg))

    def test_makespan_and_total_time(self, diamond_ddg):
        s = asap_schedule(diamond_ddg)
        assert s.makespan == 2
        assert s.total_time(diamond_ddg) == 3  # d issues at 2, latency 1

    def test_shifted(self, diamond_ddg):
        s = asap_schedule(diamond_ddg).shifted(5)
        assert s["a"] == 5 and s.is_valid(diamond_ddg)

    def test_as_dict_copy(self, diamond_ddg):
        s = asap_schedule(diamond_ddg)
        d = s.as_dict()
        d["a"] = 99
        assert s["a"] == 0


class TestReferenceSchedulers:
    def test_asap_is_componentwise_minimal(self, diamond_ddg):
        asap = asap_schedule(diamond_ddg)
        for s in enumerate_schedules(diamond_ddg, horizon=4, limit=200):
            for node in diamond_ddg.nodes():
                assert s[node] >= asap[node]

    def test_alap_respects_horizon(self, diamond_ddg):
        alap = alap_schedule(diamond_ddg, total_time=10)
        assert alap.is_valid(diamond_ddg)
        assert alap.makespan <= 10

    def test_alap_default_equals_critical_path_schedule(self, chain5_ddg):
        # On a chain ASAP == ALAP at the critical path horizon.
        assert asap_schedule(chain5_ddg).times == alap_schedule(chain5_ddg).times

    def test_sequential_schedule_valid_and_serial(self, fork4_ddg):
        s = sequential_schedule(fork4_ddg)
        assert s.is_valid(fork4_ddg)
        times = sorted(s.times.values())
        assert len(set(times)) == len(times)  # strictly sequential issue

    def test_list_schedule_priority_valid(self, fork4_ddg):
        s = list_schedule_priority(fork4_ddg, priority=lambda v: hash(v) % 7)
        assert s.is_valid(fork4_ddg)

    def test_enumerate_schedules_all_valid_and_unique(self, diamond_ddg):
        seen = set()
        for s in enumerate_schedules(diamond_ddg, horizon=4):
            assert s.is_valid(diamond_ddg)
            key = tuple(sorted(s.times.items()))
            assert key not in seen
            seen.add(key)
        assert len(seen) > 1

    def test_enumerate_schedules_limit(self, fork4_ddg):
        assert len(list(enumerate_schedules(fork4_ddg, limit=5))) == 5


class TestLifetimes:
    def test_interval_semantics_left_open(self):
        a = LifetimeInterval(Value("a", INT), 0, 2)
        b = LifetimeInterval(Value("b", INT), 2, 4)
        assert not a.interferes(b)  # touching intervals do not interfere
        c = LifetimeInterval(Value("c", INT), 1, 3)
        assert a.interferes(c) and c.interferes(a)

    def test_empty_interval_never_interferes(self):
        empty = LifetimeInterval(Value("a", INT), 3, 3)
        other = LifetimeInterval(Value("b", INT), 0, 10)
        assert empty.is_empty and not empty.interferes(other)

    def test_contains(self):
        iv = LifetimeInterval(Value("a", INT), 1, 3)
        assert not iv.contains(1) and iv.contains(2) and iv.contains(3) and not iv.contains(4)

    def test_killing_date_and_lifetimes(self, diamond_ddg):
        g = diamond_ddg.with_bottom()
        s = asap_schedule(g)
        kd = killing_date(g, s, Value("a", INT))
        assert kd == max(s["b"], s["c"])
        intervals = value_lifetimes(g, s, INT)
        assert {iv.value.node for iv in intervals} == {"a", "b", "c"}

    def test_register_need_diamond(self, diamond_ddg):
        g = diamond_ddg.with_bottom()
        assert register_need(g, asap_schedule(g), INT) == 2

    def test_register_need_fork(self, fork4_ddg):
        g = fork4_ddg.with_bottom()
        assert register_need(g, asap_schedule(g), INT) == 4

    def test_register_need_chain_is_one(self, chain5_ddg):
        g = chain5_ddg.with_bottom()
        assert register_need(g, asap_schedule(g), INT) == 1

    def test_register_need_all_types(self, two_types_ddg):
        g = two_types_ddg.with_bottom()
        needs = register_need_all_types(g, asap_schedule(g))
        assert set(t.name for t in needs) == {"int", "float"}
        assert needs[INT] >= 1

    def test_interference_graph_symmetric_and_matches_maxlive(self, fork4_ddg):
        g = fork4_ddg.with_bottom()
        s = asap_schedule(g)
        adj = interference_graph(g, s, INT)
        for u, neigh in adj.items():
            for v in neigh:
                assert u in adj[v]
        # the four mid values form a clique
        mids = [v for v in adj if v.node.startswith("mid")]
        for u in mids:
            for v in mids:
                if u != v:
                    assert v in adj[u]

    def test_max_simultaneously_alive_witness(self, fork4_ddg):
        g = fork4_ddg.with_bottom()
        s = asap_schedule(g)
        count, witness = max_simultaneously_alive(value_lifetimes(g, s, INT))
        assert count == 4 and len(witness) == 4
