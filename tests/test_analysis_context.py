"""Property tests for the memoized AnalysisContext.

Every cached query must equal the corresponding uncached
:mod:`repro.analysis.graphalgo` function on the same graph -- before and
after mutations, through ``with_edges`` derivations, and with caching
globally disabled.  Random layered DAGs provide the property-test
population.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    AnalysisContext,
    caching_disabled,
    caching_enabled,
    context_for,
)
from repro.analysis import graphalgo
from repro.codes.generator import layered_random_ddg, random_loop_body
from repro.core import DDG, Edge
from repro.core.types import DependenceKind
from repro.reduction import would_remain_acyclic
from repro.saturation.pkill import potential_killers_map

SEEDS = [3, 17, 42, 99]


def random_ddgs():
    graphs = [
        layered_random_ddg(nodes=14 + 2 * s % 9, layers=4, edge_probability=0.35, seed=s)
        for s in SEEDS
    ]
    graphs += [random_loop_body(operations=12, seed=s) for s in SEEDS[:2]]
    return graphs


def assert_context_matches_graphalgo(ctx: AnalysisContext, ddg: DDG) -> None:
    """The central property: every cached answer equals the uncached one."""

    assert ctx.topological_order() == ddg.topological_order()
    assert ctx.longest_path_matrix() == graphalgo.longest_path_matrix(ddg)
    assert ctx.longest_path_to_sinks() == graphalgo.longest_path_to_sinks(ddg)
    assert ctx.critical_path_length() == graphalgo.critical_path_length(ddg)
    assert ctx.asap_times() == graphalgo.asap_times(ddg)
    assert ctx.alap_times() == graphalgo.alap_times(ddg)
    horizon = ctx.critical_path_length() + 3
    assert ctx.alap_times(horizon) == graphalgo.alap_times(ddg, horizon)
    assert ctx.worst_case_total_time() == graphalgo.worst_case_total_time(ddg)
    for include_self in (True, False):
        assert ctx.descendants_map(include_self) == graphalgo.descendants_map(
            ddg, include_self=include_self
        )
    assert ctx.reachability_matrix() == graphalgo.reachability_matrix(ddg)
    assert ctx.transitive_closure_pairs() == graphalgo.transitive_closure_pairs(ddg)
    assert sorted(map(str, ctx.redundant_edges())) == sorted(
        map(str, graphalgo.redundant_edges(ddg))
    )
    for node in list(ddg.nodes())[:5]:
        assert dict(ctx.longest_paths_from(node)) == graphalgo.longest_paths_from(
            ddg, node
        )
        assert ctx.descendants(node) == graphalgo.descendants(ddg, node)
        assert ctx.ancestors(node) == graphalgo.ancestors(ddg, node)
    assert ctx.is_acyclic() == ddg.is_acyclic()


def serializable_pair(ddg: DDG):
    """A comparable (u before v) node pair usable for an acyclic serial arc."""

    order = ddg.topological_order()
    return order[0], order[-1]


class TestContextEqualsGraphalgo:
    @pytest.mark.parametrize("ddg", random_ddgs(), ids=lambda g: g.name)
    def test_cached_queries_match_uncached(self, ddg):
        assert_context_matches_graphalgo(context_for(ddg), ddg)

    @pytest.mark.parametrize("ddg", random_ddgs()[:3], ids=lambda g: g.name)
    def test_queries_match_after_in_place_mutation(self, ddg):
        ctx = context_for(ddg)
        before = ctx.critical_path_length()  # populate the caches
        assert before == graphalgo.critical_path_length(ddg)
        u, v = serializable_pair(ddg)
        ddg.add_serial_edge(u, v, latency=before + 5)
        # The version bump must invalidate every cached analysis.
        assert_context_matches_graphalgo(ctx, ddg)
        assert ctx.critical_path_length() >= before + 5

    def test_explicit_invalidation(self):
        ddg = layered_random_ddg(nodes=12, layers=3, seed=7)
        ctx = context_for(ddg)
        marker = ctx.memo("probe", lambda: object())
        assert ctx.memo("probe", lambda: object()) is marker
        ctx.invalidate()
        assert ctx.memo("probe", lambda: object()) is not marker

    @pytest.mark.parametrize("ddg", random_ddgs()[:3], ids=lambda g: g.name)
    def test_with_edges_derivation(self, ddg):
        ctx = context_for(ddg)
        u, v = serializable_pair(ddg)
        edge = Edge(u, v, 2, DependenceKind.SERIAL, None)
        extended_ctx = ctx.with_edges([edge])
        assert extended_ctx is not ctx
        assert extended_ctx.ddg is not ddg
        # The derivation matches an independently built extended graph ...
        reference = ddg.copy()
        reference.add_edge(edge)
        assert_context_matches_graphalgo(extended_ctx, reference)
        # ... and the original context stays valid and untouched.
        assert_context_matches_graphalgo(ctx, ddg)

    @pytest.mark.parametrize("ddg", random_ddgs()[:3], ids=lambda g: g.name)
    def test_incremental_queries_match_materialised_extension(self, ddg):
        ctx = context_for(ddg)
        order = ctx.topological_order()
        candidates = [
            Edge(order[0], order[-1], 3, DependenceKind.SERIAL, None),
            Edge(order[1], order[-1], 0, DependenceKind.SERIAL, None),
            Edge(order[-1], order[0], 1, DependenceKind.SERIAL, None),  # cyclic
        ]
        for edges in ([candidates[0]], candidates[:2], [candidates[2]]):
            expected_acyclic = would_remain_acyclic(ddg, edges)
            assert ctx.remains_acyclic_with_edges(edges) == expected_acyclic
            if expected_acyclic:
                extended = ddg.copy()
                for e in edges:
                    extended.add_edge(e)
                assert ctx.critical_path_with_edges(edges) == (
                    graphalgo.critical_path_length(extended)
                )


class TestContextSharing:
    def test_context_for_is_shared_per_graph(self):
        ddg = layered_random_ddg(nodes=10, layers=3, seed=5)
        assert context_for(ddg) is context_for(ddg)
        assert context_for(ddg.copy()) is not context_for(ddg)

    def test_cached_objects_are_reused(self):
        ddg = layered_random_ddg(nodes=10, layers=3, seed=6)
        ctx = context_for(ddg)
        assert ctx.longest_path_matrix() is ctx.longest_path_matrix()
        assert ctx.descendants_map() is ctx.descendants_map()

    def test_bottom_context_is_shared_and_normalised(self):
        ddg = layered_random_ddg(nodes=10, layers=3, seed=8)
        bottom_ctx = context_for(ddg).bottom()
        assert bottom_ctx.ddg.has_bottom
        assert bottom_ctx is context_for(ddg).bottom()
        assert context_for(bottom_ctx.ddg) is bottom_ctx
        assert bottom_ctx.bottom() is bottom_ctx
        reference = ddg.with_bottom()
        assert bottom_ctx.ddg.n == reference.n
        assert bottom_ctx.ddg.m == reference.m

    def test_caching_disabled_contexts_are_passthrough(self):
        ddg = layered_random_ddg(nodes=10, layers=3, seed=9)
        assert caching_enabled()
        with caching_disabled():
            assert not caching_enabled()
            ctx = context_for(ddg)
            assert not ctx.enabled
            assert ctx is not context_for(ddg)
            assert_context_matches_graphalgo(ctx, ddg)
            # Disabled contexts recompute: no object identity between calls.
            assert ctx.longest_path_matrix() is not ctx.longest_path_matrix()
        assert caching_enabled()

    def test_higher_layer_memo_follows_graph_version(self):
        ddg = layered_random_ddg(nodes=12, layers=3, seed=10)
        rtype = ddg.register_types()[0]
        first = potential_killers_map(ddg, rtype)
        assert potential_killers_map(ddg, rtype) is first
        u, v = serializable_pair(ddg)
        ddg.add_serial_edge(u, v, latency=1)
        refreshed = potential_killers_map(ddg, rtype)
        assert refreshed is not first
        with caching_disabled():
            assert potential_killers_map(ddg, rtype) == refreshed
