"""Tests for the IR, the dependence analysis, the kernels and the generators."""

import pytest

from repro.codes import (
    AliasPolicy,
    Block,
    benchmark_suite,
    build_ddg,
    kernel_suite,
    layered_random_ddg,
    random_expression_forest,
    random_loop_body,
    random_suite,
    suite_by_name,
)
from repro.codes.ir import Instruction
from repro.core import validate_ddg
from repro.core.types import FLOAT, INT
from repro.errors import IRError
from repro.saturation import greedy_saturation


class TestIR:
    def test_block_builders(self):
        b = Block("t")
        x = b.load("x", "addr", region="x")
        y = b.fmul("y", x, "c")
        b.store(y, "out", region="out")
        assert len(b) == 3
        assert b.defined_names() == ["x", "y"]
        assert "c" in b.live_in_names()

    def test_ssa_enforced(self):
        b = Block("t")
        b.load("x", "a")
        with pytest.raises(IRError):
            b.load("x", "b")

    def test_instruction_defaults(self):
        i = Instruction("fmul", "d", ("a", "b"))
        assert i.effective_latency == 4
        assert i.effective_fu_class == "fpu"
        assert i.effective_rtype == FLOAT
        assert Instruction("add", "d", ("a", "b")).effective_rtype == INT
        assert Instruction("store", None, ("a",)).effective_rtype is None

    def test_custom_latency_and_fu(self):
        i = Instruction("load", "d", (), latency=9, fu_class="dma")
        assert i.effective_latency == 9 and i.effective_fu_class == "dma"

    def test_int_and_float_helpers(self):
        b = Block("t")
        b.iload("i", "addr")
        b.add("j", "i", "one")
        b.mov("k", "j", INT)
        g = build_ddg(b)
        assert {t.name for t in g.register_types()} == {"int"}


class TestDependenceAnalysis:
    def test_raw_flow_edges(self):
        b = Block("t")
        x = b.load("x", "a", region="a")
        y = b.fadd("y", x, "c")
        b.store(y, "out", region="out")
        g = build_ddg(b)
        flows = [e for e in g.edges() if e.is_flow]
        assert len(flows) == 2
        # flow latency equals the producer latency
        load_node = next(n for n in g.nodes() if "load" in n)
        assert all(e.latency == 4 for e in g.out_edges(load_node) if e.is_flow)

    def test_live_in_operands_create_no_edges(self):
        b = Block("t")
        b.fadd("y", "ext1", "ext2")
        g = build_ddg(b)
        assert g.m == 0

    def test_memory_ordering_same_region(self):
        b = Block("t")
        b.store("v", "a", region="r")
        b.load("x", "a", region="r")
        g = build_ddg(b)
        serials = [e for e in g.edges() if e.is_serial]
        assert len(serials) == 1

    def test_memory_ordering_distinct_regions_independent(self):
        b = Block("t")
        b.store("v", "a", region="r1")
        b.load("x", "b", region="r2")
        assert build_ddg(b).m == 0

    def test_alias_policies(self):
        b = Block("t")
        b.load("x", "a", region="r1")
        b.store("unrelated", "b", region="r2")
        # regions policy: different regions are independent
        assert build_ddg(b, alias_policy=AliasPolicy.REGIONS).m == 0
        # conservative policy orders the load/store pair anyway
        assert build_ddg(b, alias_policy=AliasPolicy.CONSERVATIVE).m == 1
        assert build_ddg(b, alias_policy=AliasPolicy.NONE).m == 0

    def test_load_load_never_ordered(self):
        b = Block("t")
        b.load("x", "a", region="r")
        b.load("y", "a", region="r")
        assert build_ddg(b).m == 0

    def test_unknown_region_is_conservative(self):
        b = Block("t")
        b.store("v", "a")
        b.store("w", "b")
        assert build_ddg(b).m == 1


class TestKernels:
    @pytest.mark.parametrize("entry", kernel_suite(), ids=lambda e: e.name)
    def test_kernels_are_wellformed_dags(self, entry):
        assert validate_ddg(entry.ddg) == []
        assert entry.ddg.is_acyclic()
        assert entry.ddg.n >= 4

    @pytest.mark.parametrize("entry", kernel_suite(), ids=lambda e: e.name)
    def test_kernels_have_positive_saturation(self, entry):
        total = sum(
            greedy_saturation(entry.ddg, t).rs for t in entry.ddg.register_types()
        )
        assert total >= 1

    def test_suite_lookup(self):
        assert suite_by_name("figure2").ddg.n == 8
        with pytest.raises(KeyError):
            suite_by_name("does-not-exist")

    @pytest.mark.needs_ilp_solver
    def test_figure2_properties(self):
        from repro.saturation import exact_saturation

        g = suite_by_name("figure2").ddg
        assert exact_saturation(g, INT).rs == 4
        assert g.operation("a").latency == 17

    def test_suite_size_filter(self):
        small = benchmark_suite(include_random=False, max_size=10)
        assert all(e.size <= 10 for e in small)


class TestGenerators:
    def test_layered_generator_deterministic(self):
        a = layered_random_ddg(20, seed=5)
        b = layered_random_ddg(20, seed=5)
        assert a.n == b.n and a.m == b.m
        assert sorted(str(e) for e in a.edges()) == sorted(str(e) for e in b.edges())

    def test_layered_generator_different_seeds_differ(self):
        a = layered_random_ddg(20, seed=5)
        b = layered_random_ddg(20, seed=6)
        assert sorted(str(e) for e in a.edges()) != sorted(str(e) for e in b.edges())

    def test_generators_produce_valid_dags(self):
        for g in (
            layered_random_ddg(18, seed=1),
            random_expression_forest(trees=3, depth=3, seed=2),
            random_loop_body(operations=15, seed=3),
        ):
            assert validate_ddg(g) == []
            assert g.is_acyclic()

    def test_random_suite_reproducible(self):
        a = [g.name for g in random_suite(count=6, seed=9)]
        b = [g.name for g in random_suite(count=6, seed=9)]
        assert a == b and len(a) == 6
