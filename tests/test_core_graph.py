"""Tests for the DDG data structure (repro.core.graph)."""

import pytest

from repro.core import BOTTOM, DDG, DDGBuilder, Operation
from repro.core.graph import Edge
from repro.core.types import DependenceKind, INT, FLOAT
from repro.errors import CyclicGraphError, GraphError


def small_graph():
    g = DDG("g")
    g.add_operation(Operation("a", defs=frozenset({INT}), latency=2))
    g.add_operation(Operation("b", defs=frozenset({INT}), latency=1))
    g.add_operation(Operation("c", latency=1))
    g.add_flow_edge("a", "b", INT)
    g.add_flow_edge("b", "c", INT)
    g.add_serial_edge("a", "c", latency=0)
    return g


class TestConstruction:
    def test_counts(self):
        g = small_graph()
        assert g.n == 3 and g.m == 3
        assert len(g) == 3 and "a" in g

    def test_duplicate_operation_rejected(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.add_operation(Operation("a"))

    def test_flow_edge_requires_defined_type(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.add_flow_edge("c", "a", INT)  # c defines nothing

    def test_flow_edge_default_latency_is_producer_latency(self):
        g = small_graph()
        edges = g.edges_between("a", "b")
        assert edges[0].latency == 2

    def test_self_loop_rejected(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.add_serial_edge("a", "a")

    def test_unknown_node_rejected(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.add_serial_edge("a", "zz")

    def test_duplicate_edge_keeps_max_latency(self):
        g = small_graph()
        g.add_serial_edge("a", "c", latency=5)
        g.add_serial_edge("a", "c", latency=2)
        serial = [e for e in g.edges_between("a", "c") if e.is_serial]
        assert len(serial) == 1 and serial[0].latency == 5

    def test_parallel_flow_and_serial_edges_coexist(self):
        g = small_graph()
        g.add_serial_edge("a", "b", latency=0)
        assert len(g.edges_between("a", "b")) == 2

    def test_bare_name_with_kwargs(self):
        g = DDG("x")
        g.add_operation("n", latency=3, defs=frozenset({FLOAT}))
        assert g.operation("n").latency == 3

    def test_edge_validation(self):
        with pytest.raises(GraphError):
            Edge("a", "b", 1, DependenceKind.FLOW, None)
        with pytest.raises(GraphError):
            Edge("a", "b", 1, DependenceKind.SERIAL, INT)


class TestQueries:
    def test_consumers(self):
        g = small_graph()
        assert g.consumers("a", INT) == ["b"]
        assert g.consumers("b", INT) == ["c"]

    def test_values_and_types(self):
        g = small_graph()
        assert {v.node for v in g.values(INT)} == {"a", "b"}
        assert g.register_types() == [INT]

    def test_exit_values(self):
        g = small_graph()
        assert [v.node for v in g.exit_values(INT)] == []
        g2 = DDGBuilder("x").default_type("int").value("a").value("b").flow("a", "b").build()
        assert [v.node for v in g2.exit_values("int")] == ["b"]

    def test_sources_sinks_degrees(self):
        g = small_graph()
        assert g.sources() == ["a"] and g.sinks() == ["c"]
        assert g.in_degree("c") == 2 and g.out_degree("a") == 2

    def test_successors_predecessors(self):
        g = small_graph()
        assert set(g.successors("a")) == {"b", "c"}
        assert set(g.predecessors("c")) == {"a", "b"}

    def test_flow_edges_filter(self):
        g = small_graph()
        assert sum(1 for _ in g.flow_edges(INT)) == 2
        assert sum(1 for _ in g.flow_edges(FLOAT)) == 0


class TestStructure:
    def test_topological_order(self):
        g = small_graph()
        order = g.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_detection(self):
        g = small_graph()
        g.add_serial_edge("c", "a", latency=0)
        assert not g.is_acyclic()
        with pytest.raises(CyclicGraphError):
            g.topological_order()

    def test_copy_is_independent(self):
        g = small_graph()
        h = g.copy()
        h.add_serial_edge("a", "b", latency=9)
        assert g.m == 3 and h.m == 4

    def test_remove_edge(self):
        g = small_graph()
        edge = g.edges_between("a", "c")[0]
        g.remove_edge(edge)
        assert g.m == 2
        with pytest.raises(GraphError):
            g.remove_edge(edge)


class TestBottom:
    def test_with_bottom_adds_flow_for_exit_values(self):
        g = small_graph()
        gb = g.with_bottom()
        assert gb.has_bottom
        # b's value is consumed by c; only b's value? a consumed by b. Exit value
        # of the original graph: b (c consumes it)... none are exits here, so the
        # bottom only gets serial arcs.
        assert BOTTOM in gb.nodes()
        assert gb.consumers("b", INT) == ["c"]
        # every original node reaches bottom
        for node in g.nodes():
            assert BOTTOM in gb.successors(node)

    def test_with_bottom_exit_value_flow(self):
        g = DDGBuilder("x").default_type("int").value("a").build()
        gb = g.with_bottom()
        assert gb.consumers("a", INT) == [BOTTOM]

    def test_with_bottom_idempotent(self):
        g = small_graph().with_bottom()
        again = g.with_bottom()
        assert again.n == g.n and again.m == g.m

    def test_bottom_serial_latency_is_op_latency(self):
        g = small_graph().with_bottom()
        edges = g.edges_between("a", BOTTOM)
        assert max(e.latency for e in edges) == 2

    def test_without_bottom_roundtrip(self):
        g = small_graph()
        back = g.with_bottom().without_bottom()
        assert back.n == g.n and back.m == g.m

    def test_bottom_is_last_in_topological_order(self):
        g = small_graph().with_bottom()
        assert g.topological_order()[-1] == BOTTOM


class TestExport:
    def test_to_networkx(self):
        g = small_graph()
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 3 and nxg.number_of_edges() == 3

    def test_summary(self):
        s = small_graph().summary()
        assert s["operations"] == 3 and s["values"] == {"int": 2}
