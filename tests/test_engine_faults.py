"""Fault-tolerance tests: supervised engine chaos matrix + store races.

The contract under test is the chaos invariant: however workers crash,
hang, return garbage, or take the whole process pool down with them, a
supervised ``BatchEngine.map`` completes with results (and reports)
byte-identical to a serial fault-free run, and every item accounts for
itself through an :class:`ItemOutcome`.  The second half pins the
concurrency-hardened :class:`ResultStore`: concurrent writer processes
hammering one shard never produce a torn read.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time

import pytest

from repro.analysis.store import ResultStore
from repro.codes import benchmark_suite
from repro.core import superscalar
from repro.errors import ReproError, SolverError, TransientError
from repro.experiments import (
    BatchEngine,
    ItemTimeout,
    SupervisorConfig,
    run_pipeline_experiment,
)
from repro.testing import (
    CorruptPayload,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    active_plan,
    is_corrupt_payload,
)

# Module-level workers so the process policy can pickle them.


def _square(x: int) -> int:
    return x * x


def _sleepy_square(packed):
    x, delay = packed
    time.sleep(delay)
    return x * x


_FAST_CONFIG = SupervisorConfig(
    timeout=0.25, max_attempts=4, backoff_base=0.01, backoff_cap=0.05
)


# --------------------------------------------------------------------------- #
# Fault plan parsing and determinism
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse("crash:0.1,hang:0.05,corrupt@7,kill@3,seed:42,hangdur:1.5")
        assert plan.crash_rate == 0.1 and plan.hang_rate == 0.05
        assert plan.corrupt_at == frozenset({7}) and plan.kill_at == frozenset({3})
        assert plan.seed == 42 and plan.hang_seconds == 1.5
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("explode:0.5")
        with pytest.raises(ValueError):
            FaultPlan.parse("crash:1.5")
        with pytest.raises(ValueError):
            FaultPlan.parse("crash:0.9,hang:0.9")

    def test_decisions_are_deterministic_and_capped(self):
        plan = FaultPlan.parse("crash:0.3,hang:0.2,seed:11,maxattempts:2")
        injector = FaultInjector(plan)
        decisions = [injector.decide(i, 1) for i in range(200)]
        assert decisions == [injector.decide(i, 1) for i in range(200)]
        assert {"crash", "hang"} <= set(d for d in decisions if d)
        # Beyond max_faulty_attempts every rate-based decision is clean,
        # which is what turns "the chaos run completes" into a guarantee.
        assert all(injector.decide(i, 3) is None for i in range(200))

    def test_planted_faults_fire_on_first_attempt_only(self):
        injector = FaultInjector(FaultPlan.parse("crash@5"))
        assert injector.decide(5, 1) == "crash"
        assert injector.decide(5, 2) is None
        assert injector.decide(4, 1) is None

    def test_active_plan_reads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert active_plan() is None
        monkeypatch.setenv("REPRO_FAULTS", "crash@1")
        assert active_plan() == FaultPlan.parse("crash@1")
        monkeypatch.setenv("REPRO_FAULTS", "seed:9")  # no faults => inactive
        assert active_plan() is None

    def test_corrupt_payload_marker(self):
        marker = CorruptPayload(index=3, attempt=1)
        assert is_corrupt_payload(marker) and not is_corrupt_payload({"index": 3})


# --------------------------------------------------------------------------- #
# Error classification
# --------------------------------------------------------------------------- #
class TestRetryablePredicate:
    def test_library_errors_fail_fast_by_default(self):
        assert not ReproError("x").retryable()
        assert not SolverError("solver died").retryable()

    def test_transient_errors_are_retryable(self):
        assert TransientError("worker lost").retryable()
        assert ItemTimeout("timed out").retryable()


# --------------------------------------------------------------------------- #
# The chaos matrix: crash / hang / corrupt under every policy
# --------------------------------------------------------------------------- #
class TestChaosMatrix:
    @pytest.mark.parametrize("policy", ["serial", "thread", "process"])
    def test_results_identical_under_planted_faults(self, policy, monkeypatch):
        items = list(range(8))
        reference = [x * x for x in items]
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "crash@1,corrupt@2,hang@3,crash:0.2,seed:13,hangdur:0.6",
        )
        engine = BatchEngine(policy, workers=2, supervisor=_FAST_CONFIG)
        results, outcomes = engine.map_with_outcomes(_square, items)
        assert results == reference
        assert [o.index for o in outcomes] == items
        assert all(o.status == "ok" for o in outcomes)
        faulted = [o for o in outcomes if o.faulted]
        assert len(faulted) >= 3  # the planted trio at least
        kinds = {event.kind for o in faulted for event in o.faults}
        assert "error" in kinds or "corrupt" in kinds
        # Retries are visible in the attempt counts, not in the results.
        assert any(o.attempts > 1 for o in faulted)

    def test_rate_faults_are_reproducible_across_runs(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:0.3,corrupt:0.2,seed:7")
        engine = BatchEngine("thread", workers=3, supervisor=_FAST_CONFIG)
        first_results, first = engine.map_with_outcomes(_square, list(range(12)))
        second_results, second = engine.map_with_outcomes(_square, list(range(12)))
        assert first_results == second_results == [x * x for x in range(12)]
        # The fault *schedule* is a pure function of (seed, index, attempt):
        # both runs record identical per-item fault kind sequences.
        key = lambda outs: [[e.kind for e in o.faults] for o in outs]
        assert key(first) == key(second)

    def test_timeout_recovers_hung_worker(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "hang@2,hangdur:1.0,seed:3")
        engine = BatchEngine("thread", workers=2, supervisor=_FAST_CONFIG)
        t0 = time.monotonic()
        results, outcomes = engine.map_with_outcomes(_square, list(range(5)))
        assert results == [x * x for x in range(5)]
        hung = outcomes[2]
        assert hung.status == "ok" and hung.attempts == 2
        assert [e.kind for e in hung.faults] == ["timeout"]
        assert time.monotonic() - t0 < 5.0

    def test_broken_process_pool_recovers(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "kill@1,seed:3")
        engine = BatchEngine("process", workers=2, supervisor=_FAST_CONFIG)
        results, outcomes = engine.map_with_outcomes(_square, list(range(6)))
        assert results == [x * x for x in range(6)]
        kinds = {e.kind for o in outcomes for e in o.faults}
        assert "pool-broken" in kinds

    def test_repeated_pool_deaths_degrade_down_the_ladder(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "kill@0,kill@1,kill@2,kill@3,seed:3")
        config = SupervisorConfig(
            timeout=5.0, max_attempts=5, backoff_base=0.01, pool_failure_limit=1
        )
        engine = BatchEngine("process", workers=2, supervisor=config)
        results, outcomes = engine.map_with_outcomes(_square, list(range(5)))
        assert results == [x * x for x in range(5)]
        # The pool died more often than the failure limit allows, so at
        # least part of the batch finished on a degraded policy.
        assert {o.policy for o in outcomes} & {"thread", "serial"}

    def test_speculative_straggler_dispatch_keeps_results_exact(self):
        config = SupervisorConfig(timeout=None, max_attempts=2, speculate=True,
                                  backoff_base=0.01)
        engine = BatchEngine("thread", workers=4, supervisor=config)
        items = [(x, 0.3 if x == 5 else 0.0) for x in range(6)]
        results, outcomes = engine.map_with_outcomes(_sleepy_square, items)
        assert results == [x * x for x, _ in items]
        assert all(o.status == "ok" for o in outcomes)


# --------------------------------------------------------------------------- #
# Failure semantics
# --------------------------------------------------------------------------- #
_CALLS: list = []


def _fail_solver(x):
    _CALLS.append(x)
    if x == 2:
        raise SolverError("deterministically infeasible")
    return x


def _fail_value(x):
    _CALLS.append(x)
    raise ValueError("broken forever")


class TestFailureSemantics:
    @pytest.mark.parametrize("policy", ["serial", "thread"])
    def test_non_retryable_errors_skip_the_retry_budget(self, policy):
        _CALLS.clear()
        engine = BatchEngine(policy, workers=2, supervisor=_FAST_CONFIG)
        with pytest.raises(SolverError):
            engine.map(_fail_solver, [1, 2, 3])
        assert _CALLS.count(2) == 1

    def test_retryable_errors_burn_the_budget_then_surface(self):
        _CALLS.clear()
        engine = BatchEngine(
            "thread", workers=2,
            supervisor=SupervisorConfig(max_attempts=3, backoff_base=0.001),
        )
        with pytest.raises(ValueError, match="broken forever"):
            engine.map(_fail_value, [9])
        assert _CALLS == [9, 9, 9]

    def test_exhausted_timeouts_raise_item_timeout(self):
        config = SupervisorConfig(timeout=0.05, max_attempts=2, backoff_base=0.001)
        engine = BatchEngine("thread", workers=2, supervisor=config)
        with pytest.raises(ItemTimeout):
            engine.map(_sleepy_square, [(1, 0.6), (2, 0.6)])

    def test_plain_dispatch_cancels_pending_futures_on_failure(self):
        executed = []

        def fail_first(x):
            if x == 0:
                raise ValueError("boom on 0")
            time.sleep(0.1)
            executed.append(x)
            return x

        engine = BatchEngine("thread", workers=1)
        t0 = time.monotonic()
        with pytest.raises(ValueError, match="boom on 0"):
            engine.map(fail_first, [0, 1, 2, 3, 4, 5])
        elapsed = time.monotonic() - t0
        # One worker: item 0 fails instantly; the worker may have already
        # dequeued item 1 before the engine reacts, but everything still
        # queued must be cancelled rather than run to completion.
        assert len(executed) <= 1
        assert elapsed < 0.4


# --------------------------------------------------------------------------- #
# Report-level chaos invariant (the acceptance criterion)
# --------------------------------------------------------------------------- #
class TestChaosReports:
    def test_process_chaos_report_byte_identical_to_serial_reference(
        self, monkeypatch
    ):
        suite = benchmark_suite(max_size=10)
        machine = superscalar(int_registers=6, float_registers=6)
        kwargs = dict(suite=suite, machine=machine, registers=6,
                      compare_baseline=False)

        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        reference = run_pipeline_experiment(**kwargs)
        n_items = len(reference.outcomes)
        assert n_items >= 3

        monkeypatch.setenv(
            "REPRO_FAULTS",
            "crash@0,corrupt@1,hang@2,crash:0.1,seed:29,hangdur:0.6",
        )
        chaos_engine = BatchEngine("process", workers=2, supervisor=_FAST_CONFIG)
        chaos = run_pipeline_experiment(engine=chaos_engine, **kwargs)

        assert chaos.to_table() == reference.to_table()
        assert len(chaos.item_outcomes) == n_items
        assert all(o.status == "ok" for o in chaos.item_outcomes)
        faulted = sum(1 for o in chaos.item_outcomes if o.faulted)
        assert faulted >= max(1, n_items // 10)  # >=10% of items disturbed

    def test_unsupervised_reports_carry_trivial_outcomes(self):
        suite = benchmark_suite(max_size=8)
        machine = superscalar(int_registers=6, float_registers=6)
        report = run_pipeline_experiment(
            suite=suite, machine=machine, registers=6, compare_baseline=False
        )
        assert len(report.item_outcomes) == len(report.outcomes)
        assert all(not o.faulted and o.status == "ok" for o in report.item_outcomes)


# --------------------------------------------------------------------------- #
# Store concurrency and quarantine
# --------------------------------------------------------------------------- #
#: Two writers hammer the same few keys (hence the same shards) with
#: internally-checkable payloads of different sizes.
_RACE_KEYS = [("racehash", "race", {"slot": s}) for s in range(2)]


def _race_payload(writer: int, iteration: int) -> dict:
    return {
        "writer": writer,
        "iteration": iteration,
        "blob": b"x" * (512 + 64 * (iteration % 7)),
        "check": writer * 1_000_000 + iteration,
    }


def _race_writer(root: str, writer: int, iterations: int) -> None:
    store = ResultStore(root)
    for i in range(iterations):
        for ghash, query, params in _RACE_KEYS:
            store.put(ghash, query, params, _race_payload(writer, i))


def _payload_is_complete(value: dict) -> bool:
    return (
        isinstance(value, dict)
        and value["check"] == value["writer"] * 1_000_000 + value["iteration"]
        and value["blob"] == b"x" * (512 + 64 * (value["iteration"] % 7))
    )


class TestStoreConcurrency:
    def test_two_writer_processes_never_produce_a_torn_read(self, tmp_path):
        iterations = 60
        writers = [
            multiprocessing.Process(
                target=_race_writer, args=(str(tmp_path), w, iterations)
            )
            for w in (1, 2)
        ]
        for proc in writers:
            proc.start()
        reader = ResultStore(tmp_path)
        reads = misses = 0
        try:
            while any(proc.is_alive() for proc in writers):
                for ghash, query, params in _RACE_KEYS:
                    value = reader.get(ghash, query, params, default=None)
                    reads += 1
                    if value is None:
                        misses += 1
                    else:
                        assert _payload_is_complete(value), value
        finally:
            for proc in writers:
                proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in writers)
        assert reads > 0
        # Every read was a miss or a fully-written value: nothing was torn,
        # nothing was quarantined.
        assert reader.stats.corrupt == 0 and reader.stats.errors == 0
        for ghash, query, params in _RACE_KEYS:
            assert _payload_is_complete(reader.get(ghash, query, params))
        assert reader.quarantined_count() == 0

    def test_corrupt_entry_is_quarantined_not_deleted(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put("h", "q", None, {"fine": True})
        path.write_bytes(b"this is not a pickle")
        assert store.get("h", "q", None, default="miss") == "miss"
        assert store.stats.corrupt == 1 and store.stats.errors == 1
        assert not path.exists()
        assert store.quarantined_count() == 1
        assert (store.quarantine_dir / path.name).read_bytes() == b"this is not a pickle"
        # Quarantined entries are out of the live namespace entirely.
        assert store.entry_count() == 0

    def test_wrong_shape_payload_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put("h", "q", None, "value")
        path.write_bytes(pickle.dumps(["not", "the", "payload", "dict"]))
        assert store.get("h", "q", None) is None
        assert store.stats.corrupt == 1
        assert store.quarantined_count() == 1

    def test_clear_spares_the_quarantine(self, tmp_path):
        store = ResultStore(tmp_path)
        keep = store.put("h1", "q", None, 1)
        bad = store.put("h2", "q", None, 2)
        bad.write_bytes(b"garbage")
        store.get("h2", "q", None)  # quarantines
        assert store.clear() == 1  # only the live entry
        assert store.entry_count() == 0
        assert store.quarantined_count() == 1
        assert not keep.exists()

    def test_shard_lock_files_are_invisible_to_entry_count(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put("h", "q", None, "v")
        assert (path.parent / ".lock").exists()
        assert store.entry_count() == 1


def _lambda_result(x):
    return lambda: x  # deliberately unpicklable return value


# --------------------------------------------------------------------------- #
# PR-8 satellites: pickling failures, environment validation, network plans
# --------------------------------------------------------------------------- #
class TestPicklingFailFast:
    def test_unpicklable_result_is_not_retried(self):
        engine = BatchEngine("process", workers=2, supervisor=_FAST_CONFIG)
        t0 = time.monotonic()
        with pytest.raises((pickle.PickleError, AttributeError, TypeError)):
            engine.map_with_outcomes(_lambda_result, list(range(3)))
        # Deterministic failure: one attempt, no retry/backoff burn.
        assert time.monotonic() - t0 < 5.0

    def test_pickle_errors_classified_non_retryable(self):
        from repro.experiments.supervisor import Supervisor

        assert not Supervisor._is_retryable(pickle.PicklingError("no"))
        assert not Supervisor._is_retryable(
            AttributeError("Can't pickle local object ...")
        )
        # Only the serialization flavour fails fast; a plain AttributeError
        # keeps the generic worker-exception (retryable) classification.
        assert Supervisor._is_retryable(AttributeError("plain attribute miss"))


class TestEnvironmentValidation:
    @pytest.mark.parametrize(
        "variable, value",
        [
            ("REPRO_TIMEOUT", "-5"),
            ("REPRO_TIMEOUT", "abc"),
            ("REPRO_RETRIES", "0"),
            ("REPRO_RETRIES", "abc"),
            ("REPRO_RETRIES", "2.5"),
        ],
    )
    def test_malformed_supervision_env_names_the_variable(
        self, monkeypatch, variable, value
    ):
        from repro.errors import ConfigurationError

        monkeypatch.setenv(variable, value)
        with pytest.raises(ConfigurationError, match=variable):
            SupervisorConfig.from_environment()

    def test_zero_timeout_means_no_deadline(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT", "0")
        config = SupervisorConfig.from_environment()
        assert config is not None and config.timeout is None

    def test_malformed_fault_spec_names_the_variable(self, monkeypatch):
        from repro.errors import ConfigurationError

        monkeypatch.setenv("REPRO_FAULTS", "crash:not-a-rate")
        with pytest.raises(ConfigurationError, match="REPRO_FAULTS"):
            active_plan()


class TestNetworkFaultPlans:
    def test_network_spec_round_trips(self):
        spec = "drop:0.2,dup@3,partition@1,leasekill@2,delaydur:0.5,seed:4"
        plan = FaultPlan.parse(spec)
        assert plan.drop_rate == 0.2
        assert plan.dup_at == frozenset({3})
        assert plan.partition_at == frozenset({1})
        assert plan.leasekill_at == frozenset({2})
        assert plan.delay_seconds == 0.5
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_network_rates_validated_separately_from_worker_rates(self):
        # Worker and network rate budgets are independent; each must be a
        # probability distribution on its own.
        FaultPlan.parse("crash:0.6,drop:0.6")  # fine: different domains
        with pytest.raises(ValueError):
            FaultPlan.parse("drop:0.7,delay:0.5")

    def test_planted_only_kinds_reject_rate_form(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("partition:0.5")
        with pytest.raises(ValueError):
            FaultPlan.parse("leasekill:0.1")

    def test_network_decisions_deterministic_and_domain_separated(self):
        plan = FaultPlan.parse("drop:0.5,crash:0.5,seed:21")
        injector = FaultInjector(plan)
        net = [injector.decide_network(i, 1) for i in range(32)]
        assert net == [injector.decide_network(i, 1) for i in range(32)]
        worker = [injector.decide(i, 1) for i in range(32)]
        # Separate hash domains: the two fault streams must not mirror
        # each other index for index.
        assert [d is not None for d in net] != [d is not None for d in worker]

    def test_planted_network_faults_fire_once(self):
        plan = FaultPlan.parse("dup@4,partition@5,leasekill@6")
        injector = FaultInjector(plan)
        assert injector.decide_network(4, 1) == "dup"
        assert injector.decide_network(4, 2) is None
        assert injector.partition_planned(5, 1)
        assert not injector.partition_planned(5, 2)
        assert injector.leasekill_planned(6, 1)
        assert not injector.leasekill_planned(6, 2)
