"""Tests for the processor models, the DDG builder and validation."""

import pytest

from repro.core import (
    ArchitectureFamily,
    DDGBuilder,
    FLOAT,
    INT,
    ProcessorModel,
    chain_ddg,
    check_ddg,
    epic,
    fork_join_ddg,
    generic_machine,
    independent_chains_ddg,
    retarget,
    superscalar,
    validate_ddg,
    vliw,
)
from repro.core.machine import FunctionalUnitSpec
from repro.errors import GraphError


class TestMachines:
    def test_superscalar_preset(self):
        m = superscalar(int_registers=16)
        assert m.registers(INT) == 16
        assert m.family == ArchitectureFamily.SUPERSCALAR
        assert not m.has_offsets and m.sequential_semantics

    def test_vliw_preset_has_offsets(self):
        m = vliw()
        assert m.family == ArchitectureFamily.VLIW
        assert m.has_offsets
        assert m.default_write_offset("mem") == 2

    def test_epic_preset(self):
        m = epic()
        assert m.registers(FLOAT) == 128 and not m.sequential_semantics

    def test_with_registers_copy(self):
        m = superscalar()
        m2 = m.with_registers(INT, 4)
        assert m2.registers(INT) == 4 and m.registers(INT) == 32

    def test_unknown_register_file(self):
        with pytest.raises(KeyError):
            generic_machine(8, "int").registers("float")

    def test_fu_spec_fallback(self):
        m = superscalar()
        spec = m.fu_spec("weird-unit")
        assert spec.count == 1

    def test_invalid_fu_spec(self):
        with pytest.raises(ValueError):
            FunctionalUnitSpec("alu", count=0)

    def test_invalid_issue_width(self):
        with pytest.raises(ValueError):
            ProcessorModel("m", issue_width=0)

    def test_retarget_stamps_offsets(self):
        g = (
            DDGBuilder("g").default_type("float")
            .value("x", latency=4, fu_class="mem")
            .value("y", latency=4, fu_class="fpu")
            .op("s", fu_class="mem")
            .flow("x", "s").flow("y", "s")
            .build()
        )
        rg = retarget(g, vliw())
        assert rg.operation("x").delta_w == 2
        assert g.operation("x").delta_w == 0  # original untouched


class TestBuilder:
    def test_parametric_shapes(self):
        assert chain_ddg(4).n == 4
        assert fork_join_ddg(3).n == 5
        assert independent_chains_ddg(2, 3).n == 6

    def test_default_type_required(self):
        with pytest.raises(GraphError):
            DDGBuilder("x").value("a")

    def test_flow_needs_unambiguous_type(self):
        b = DDGBuilder("x")
        b.op("a", defs=[INT, FLOAT])
        b.op("b")
        with pytest.raises(GraphError):
            b.flow("a", "b")

    def test_flows_helper(self):
        g = (
            DDGBuilder("x").default_type("int")
            .value("a").value("b").op("c")
            .flows([("a", "c"), ("b", "c")])
            .build()
        )
        assert g.m == 2

    def test_build_with_bottom(self):
        g = DDGBuilder("x").default_type("int").value("a").build(with_bottom=True)
        assert g.has_bottom


class TestValidation:
    def test_valid_graph(self, diamond_ddg):
        assert validate_ddg(diamond_ddg) == []
        assert check_ddg(diamond_ddg) is diamond_ddg

    def test_empty_graph_flagged(self):
        from repro.core import DDG

        assert validate_ddg(DDG("empty")) == ["graph has no operation"]

    def test_cycle_flagged(self, diamond_ddg):
        diamond_ddg.add_serial_edge("d", "a")
        problems = validate_ddg(diamond_ddg)
        assert any("cycle" in p for p in problems)
        with pytest.raises(GraphError):
            check_ddg(diamond_ddg)

    def test_bottom_with_successor_flagged(self, diamond_ddg):
        g = diamond_ddg.with_bottom()
        from repro.core.types import BOTTOM

        g.add_serial_edge(BOTTOM, "a", latency=0)
        problems = validate_ddg(g, require_acyclic=False)
        assert any("bottom" in p for p in problems)
