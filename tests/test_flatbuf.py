"""Parity tests for the vectorized flat-core kernels (``repro.analysis.flatbuf``).

Every kernel has up to three implementations behind one interface -- numpy
buffers, ``array('d')``/big-int stdlib buffers, and the exact PR-6 scalar
reference (``off``).  The reduction engine's byte-identity guarantees rest on
these being float-for-float identical, so each kernel is exercised on
randomized inputs (including ``-inf`` sentinels) across all available
backends and compared against the scalar reference.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import flatbuf
from repro.errors import ConfigurationError

NEG_INF = flatbuf.NEG_INF


def _available_backends():
    backends = ["off", "stdlib"]
    if flatbuf.numpy_available():
        backends.append("numpy")
    return backends


def _random_row(rng, n, p_inf=0.3):
    return [
        NEG_INF if rng.random() < p_inf else float(rng.randint(-50, 200))
        for _ in range(n)
    ]


class TestBackendSelection:
    def test_rejects_unknown_spec(self):
        with pytest.raises(ConfigurationError, match="REPRO_VECTOR"):
            flatbuf.set_backend("simd")
        # A failed activation must not clobber the active backend.
        assert flatbuf.backend() in ("numpy", "stdlib", "off")

    def test_rejects_unknown_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR", "fast")
        try:
            with pytest.raises(ConfigurationError, match="REPRO_VECTOR"):
                flatbuf.set_backend(None)
        finally:
            monkeypatch.delenv("REPRO_VECTOR")
            flatbuf.set_backend(None)

    def test_auto_resolves_to_concrete_backend(self):
        with flatbuf.use("auto") as active:
            assert active in ("numpy", "stdlib")

    def test_off_roundtrip_is_identity(self):
        values = [1.0, NEG_INF, 3.5]
        with flatbuf.use("off"):
            row = flatbuf.row_from_list(values)
            assert row is values
            assert flatbuf.row_to_list(row) is values

    def test_buffer_rows_box_to_builtin_floats(self):
        values = [1.0, NEG_INF, 3.5]
        for spec in _available_backends():
            with flatbuf.use(spec):
                out = flatbuf.row_to_list(flatbuf.row_from_list(values))
                assert out == values
                assert all(type(v) is float for v in out)


class TestMaxMergeParity:
    def test_randomized_rows_match_scalar_reference(self):
        rng = random.Random(20260808)
        for case in range(200):
            n = rng.randint(1, 40)
            row_vals = _random_row(rng, n)
            dst_vals = _random_row(rng, n, p_inf=rng.choice([0.1, 0.5, 1.0]))
            shift = float(rng.randint(-10, 60))

            results = {}
            for spec in _available_backends():
                with flatbuf.use(spec):
                    row = flatbuf.row_from_list(list(row_vals))
                    finite = flatbuf.finite_entries(flatbuf.row_from_list(dst_vals))
                    patched, changed = flatbuf.max_merge(row, shift, finite)
                    if patched is None:
                        results[spec] = (None, None)
                    else:
                        results[spec] = (flatbuf.row_to_list(patched), list(changed))
                    # The input row is copy-on-write: never mutated.
                    assert flatbuf.row_to_list(row) == row_vals

            reference = results["off"]
            for spec, got in results.items():
                assert got == reference, f"case {case}: {spec} diverges"
            if reference[1] is not None:
                assert reference[1] == sorted(reference[1]), "ascending contract"

    def test_no_improvement_returns_none(self):
        for spec in _available_backends():
            with flatbuf.use(spec):
                row = flatbuf.row_from_list([5.0, 6.0])
                finite = flatbuf.finite_entries(flatbuf.row_from_list([0.0, 0.0]))
                assert flatbuf.max_merge(row, 1.0, finite) == (None, None)


class TestThresholdMaskParity:
    def test_randomized_rows_match_scalar_reference(self):
        rng = random.Random(977)
        for case in range(200):
            n = rng.randint(1, 48)
            k = rng.randint(0, n)
            row_vals = _random_row(rng, n)
            vids = rng.sample(range(n), k)
            dw = [rng.randint(0, 4) for _ in range(k)]
            read = rng.randint(-5, 120)

            masks = {}
            for spec in _available_backends():
                with flatbuf.use(spec):
                    row = flatbuf.row_from_list(list(row_vals))
                    prep = flatbuf.prepare_values(vids, dw)
                    mask = flatbuf.threshold_mask(row, prep, read)
                    assert type(mask) is int
                    masks[spec] = mask

            assert len(set(masks.values())) == 1, f"case {case}: {masks}"

    def test_empty_value_set_is_zero(self):
        for spec in _available_backends():
            with flatbuf.use(spec):
                row = flatbuf.row_from_list([1.0, 2.0])
                prep = flatbuf.prepare_values([], [])
                assert flatbuf.threshold_mask(row, prep, 10) == 0


class TestClosureParity:
    def _random_dag_rows(self, rng, n):
        rows = [0] * n
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.15:
                    rows[i] |= 1 << j
        perm = list(range(n))
        rng.shuffle(perm)
        # Relabel so the DAG is not already topologically ordered.
        out = [0] * n
        for i in range(n):
            acc = 0
            for j in range(n):
                if rows[i] >> j & 1:
                    acc |= 1 << perm[j]
            out[perm[i]] = acc
        return out

    def test_scalar_and_numpy_forms_agree(self):
        if not flatbuf.numpy_available():
            pytest.skip("numpy closure form needs numpy")
        rng = random.Random(4242)
        for _ in range(40):
            n = rng.randint(1, 70)
            rows = self._random_dag_rows(rng, n)
            assert flatbuf._closure_numpy(rows) == flatbuf._closure_scalar(rows)

    def test_cycle_returns_none_on_both_forms(self):
        rows = [0b010, 0b100, 0b001]  # 0 -> 1 -> 2 -> 0
        assert flatbuf._closure_scalar(rows) is None
        if flatbuf.numpy_available():
            assert flatbuf._closure_numpy(rows) is None

    def test_dispatch_returns_scalar_result(self):
        rows = [0b10, 0b00]
        for spec in _available_backends():
            with flatbuf.use(spec):
                assert flatbuf.closure_from_rows(rows) == [0b10, 0b00]


class TestScanPairsParity:
    def _run_scan(self, spec, n, codes, x_vals, idx, cp, base_cp):
        """Drive one scan where ``fresh`` fills pairs from the given maps."""

        with flatbuf.use(spec):
            tables = flatbuf.pair_tables(n * n)
            assert tables is not None
            xs, arcs = tables
            fills = []

            def fresh(a, b, key):
                fills.append(key)
                arcs[key] = codes[key]
                if codes[key] >= 0:
                    xs[key] = x_vals[key]

            # Pre-seed a random subset as already-cached verdicts.
            for key in sorted(codes):
                if key % 3 == 0:
                    arcs[key] = codes[key]
                    if codes[key] >= 0:
                        xs[key] = x_vals[key]

            best, best_key, implied, reused = flatbuf.scan_pairs(
                xs, arcs, idx, n, cp, base_cp, fresh
            )
            return best, best_key, implied, reused, sorted(fills)

    def test_randomized_scans_match_stdlib_reference(self):
        rng = random.Random(31337)
        specs = [s for s in _available_backends() if s != "off"]
        for case in range(150):
            n = rng.randint(2, 14)
            k = rng.randint(2, n)
            idx = rng.sample(range(n), k)
            cp = rng.randint(0, 40)
            base_cp = rng.randint(0, cp) if cp else 0
            codes = {}
            x_vals = {}
            for a in range(k):
                for b in range(k):
                    if a == b:
                        continue
                    key = idx[a] * n + idx[b]
                    codes[key] = rng.choice([-3, -2, 0, 1, 2, 3])
                    x_vals[key] = float(rng.randint(0, 60))

            results = {
                spec: self._run_scan(spec, n, codes, x_vals, idx, cp, base_cp)
                for spec in specs
            }
            reference = results["stdlib"]
            for spec, got in results.items():
                assert got == reference, f"case {case}: {spec} diverges"

    def test_all_pairs_inapplicable(self):
        for spec in [s for s in _available_backends() if s != "off"]:
            with flatbuf.use(spec):
                n = 3
                tables = flatbuf.pair_tables(n * n)
                xs, arcs = tables
                for key in range(n * n):
                    arcs[key] = -3

                best, best_key, implied, reused = flatbuf.scan_pairs(
                    xs, arcs, [0, 2], n, 5, 5, lambda a, b, key: None
                )
                assert best is None and best_key is None
                assert implied == 0 and reused == 2

    def test_off_backend_has_no_tables(self):
        with flatbuf.use("off"):
            assert flatbuf.pair_tables(16) is None


class TestReductionByteIdentity:
    """End-to-end: identical ReductionResult reports across kernel backends."""

    @pytest.fixture()
    def instance(self):
        from repro.codes import kernel_suite

        entry = {e.name: e for e in kernel_suite()}["linpack-daxpy-u4"]
        return entry.ddg, entry.ddg.register_types()[0]

    @staticmethod
    def _normalized(result):
        details = {
            k: v
            for k, v in sorted(result.details.items())
            if k not in ("engine", "engine_stats")
        }
        graph = result.extended_ddg
        return repr(
            (
                result.rtype.name,
                result.target,
                result.success,
                result.original_rs,
                result.achieved_rs,
                result.added_edges,
                result.critical_path_before,
                result.critical_path_after,
                result.method,
                result.optimal,
                details,
                sorted(
                    (e.src, e.dst, e.latency, e.kind.value,
                     None if e.rtype is None else e.rtype.name)
                    for e in graph.edges()
                ),
            )
        ).encode()

    def test_reports_byte_identical_across_backends(self, instance):
        from repro.reduction import reduce_saturation_heuristic

        ddg, rtype = instance
        reports = {}
        for spec in _available_backends():
            with flatbuf.use(spec):
                result = reduce_saturation_heuristic(
                    ddg.copy(), rtype, 4, engine="incremental"
                )
                reports[spec] = self._normalized(result)
                stats = result.details["engine_stats"]
                assert stats["vector_backend"] == spec
                if spec == "off":
                    assert stats["vector_kernel_calls"] == 0
                else:
                    assert stats["vector_kernel_calls"] > 0

        assert len(set(reports.values())) == 1, sorted(reports)

    def test_engine_stats_expose_shm_counters(self, instance):
        from repro.reduction import reduce_saturation_heuristic

        ddg, rtype = instance
        result = reduce_saturation_heuristic(
            ddg.copy(), rtype, 4, engine="incremental"
        )
        stats = result.details["engine_stats"]
        assert "shm_attaches" in stats and "shm_fallbacks" in stats
