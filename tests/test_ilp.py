"""Tests for the integer-programming substrate (model, linearizations, solvers)."""

import pytest

pytest.importorskip("numpy", reason="ILP solver tests need the numeric stack")
pytest.importorskip("scipy", reason="ILP solver tests need the numeric stack")

from repro.errors import InfeasibleError, ModelError, SolverError
from repro.ilp import (
    IntegerProgram,
    LinExpr,
    SolveStatus,
    add_disjunction_ge,
    add_equivalence_conjunction,
    add_implication_ge,
    add_implication_le,
    add_max_equality,
    as_expr,
    expression_bounds,
    solve,
    solve_with_branch_and_bound,
    solve_with_scipy,
)


class TestLinExpr:
    def test_arithmetic(self):
        x, y = LinExpr.term("x"), LinExpr.term("y")
        e = 2 * x + y - 3
        assert e.coefficient("x") == 2 and e.coefficient("y") == 1 and e.constant == -3

    def test_subtraction_and_negation(self):
        x, y = LinExpr.term("x"), LinExpr.term("y")
        e = -(x - y)
        assert e.coefficient("x") == -1 and e.coefficient("y") == 1

    def test_rsub(self):
        x = LinExpr.term("x")
        e = 5 - x
        assert e.constant == 5 and e.coefficient("x") == -1

    def test_mul_by_expr_rejected(self):
        with pytest.raises(TypeError):
            LinExpr.term("x") * LinExpr.term("y")

    def test_sum_and_evaluate(self):
        e = LinExpr.sum([LinExpr.term("x"), LinExpr.term("y"), 4])
        assert e.evaluate({"x": 1, "y": 2}) == 7

    def test_bounds(self):
        e = 2 * LinExpr.term("x") - LinExpr.term("y") + 1
        lo, hi = e.bounds({"x": (0, 3), "y": (1, 2)})
        assert lo == 0 - 2 + 1 and hi == 6 - 1 + 1

    def test_as_expr_coercions(self):
        assert as_expr("x").coefficient("x") == 1
        assert as_expr(3).constant == 3
        with pytest.raises(TypeError):
            as_expr([1, 2])

    def test_zero_coefficients_dropped(self):
        e = LinExpr({"x": 0.0, "y": 1.0})
        assert e.variables() == ("y",)


class TestModel:
    def test_variable_management(self):
        m = IntegerProgram("m")
        m.add_integer("x", 0, 5)
        m.add_binary("b")
        m.add_continuous("c", -1, 1)
        assert m.num_variables == 3
        assert m.num_integer_variables == 2
        assert m.num_binary_variables == 1
        with pytest.raises(ModelError):
            m.add_integer("x", 0, 1)

    def test_bad_bounds_rejected(self):
        m = IntegerProgram("m")
        with pytest.raises(ModelError):
            m.add_integer("x", 5, 0)

    def test_constraint_unknown_variable(self):
        m = IntegerProgram("m")
        m.add_integer("x", 0, 5)
        with pytest.raises(ModelError):
            m.add_le(LinExpr.term("zzz"), 1)

    def test_constraint_needs_bound(self):
        m = IntegerProgram("m")
        x = m.add_integer("x", 0, 5)
        with pytest.raises(ModelError):
            m.add_constraint(x)

    def test_check_assignment(self):
        m = IntegerProgram("m")
        x = m.add_integer("x", 0, 5)
        y = m.add_integer("y", 0, 5)
        m.add_le(x + y, 6, label="cap")
        assert m.check_assignment({"x": 2, "y": 3}) == []
        assert "cap" in m.check_assignment({"x": 5, "y": 5})
        assert any("outside" in p for p in m.check_assignment({"x": 9, "y": 0}))

    def test_statistics_and_arrays(self):
        m = IntegerProgram("m")
        x = m.add_integer("x", 0, 5)
        m.add_ge(x, 2)
        m.maximize(x)
        names, c, A, cl, cu, lb, ub, integrality = m.to_arrays()
        assert names == ["x"] and c[0] == -1.0  # maximization negated
        assert m.statistics()["constraints"] == 1


class TestSolvers:
    def build_simple(self):
        m = IntegerProgram("simple")
        x = m.add_integer("x", 0, 10)
        y = m.add_integer("y", 0, 10)
        m.add_le(x + y, 7)
        m.add_ge(x - y, -2)
        m.maximize(2 * x + 3 * y)
        return m

    def test_scipy_backend(self):
        sol = solve_with_scipy(self.build_simple())
        assert sol.is_optimal
        assert sol.objective == pytest.approx(2 * 2.5 + 3 * 4.5, abs=2)  # integral optimum nearby

    def test_backends_agree(self):
        m = self.build_simple()
        a = solve_with_scipy(m)
        b = solve_with_branch_and_bound(m)
        assert a.is_optimal and b.is_optimal
        assert a.objective == pytest.approx(b.objective)

    def test_infeasible(self):
        m = IntegerProgram("bad")
        x = m.add_integer("x", 0, 1)
        m.add_ge(x, 5)
        m.minimize(x)
        assert solve_with_scipy(m).status is SolveStatus.INFEASIBLE
        assert solve_with_branch_and_bound(m).status is SolveStatus.INFEASIBLE
        with pytest.raises(InfeasibleError):
            solve(m, require_feasible=True)

    def test_unknown_backend(self):
        with pytest.raises(SolverError):
            solve(self.build_simple(), backend="cplex")

    def test_integer_rounding(self):
        m = IntegerProgram("round")
        x = m.add_integer("x", 0, 9)
        m.add_ge(x, 3)
        m.minimize(x)
        sol = solve(m)
        assert sol.int_value("x") == 3 and isinstance(sol.int_value("x"), int)

    def test_solution_helpers(self):
        m = self.build_simple()
        sol = solve(m)
        assert set(sol.subset("x")) == {"x"}
        assert sol.value("nope", default=-1) == -1


class TestLinearizations:
    def test_max_equality(self):
        m = IntegerProgram("max")
        x = m.add_integer("x", 0, 10)
        y = m.add_integer("y", 0, 10)
        z = m.add_integer("z", 0, 30)
        m.add_eq(x, 4)
        m.add_eq(y, 9)
        add_max_equality(m, z, [x, y], "mx")
        m.minimize(z)
        assert solve(m).int_value("z") == 9

    def test_max_equality_single_term(self):
        m = IntegerProgram("max1")
        x = m.add_integer("x", 0, 10)
        z = m.add_integer("z", 0, 10)
        m.add_eq(x, 6)
        add_max_equality(m, z, [x], "mx")
        m.minimize(z)
        assert solve(m).int_value("z") == 6

    def test_max_equality_empty_rejected(self):
        m = IntegerProgram("max0")
        z = m.add_integer("z", 0, 10)
        with pytest.raises(ModelError):
            add_max_equality(m, z, [], "mx")

    def test_implication_ge(self):
        m = IntegerProgram("impl")
        b = m.add_binary("b")
        x = m.add_integer("x", 0, 10)
        add_implication_ge(m, b, x, 7)
        m.add_ge(b, 1)
        m.minimize(x)
        assert solve(m).int_value("x") == 7

    def test_implication_inactive_when_binary_zero(self):
        m = IntegerProgram("impl0")
        b = m.add_binary("b")
        x = m.add_integer("x", 0, 10)
        add_implication_ge(m, b, x, 7)
        m.add_le(b, 0)
        m.minimize(x)
        assert solve(m).int_value("x") == 0

    def test_implication_le(self):
        m = IntegerProgram("imple")
        b = m.add_binary("b")
        x = m.add_integer("x", 0, 10)
        add_implication_le(m, b, x, 3)
        m.add_ge(b, 1)
        m.maximize(x)
        assert solve(m).int_value("x") == 3

    def test_disjunction(self):
        m = IntegerProgram("disj")
        x = m.add_integer("x", 0, 10)
        y = m.add_integer("y", 0, 10)
        add_disjunction_ge(m, [(x, 8), (y, 8)], "or")
        m.minimize(x + y)
        sol = solve(m)
        assert max(sol.int_value("x"), sol.int_value("y")) == 8
        assert sol.int_value("x") + sol.int_value("y") == 8

    def test_equivalence_conjunction_forward(self):
        # indicator forced to 1 -> both conjuncts must hold
        m = IntegerProgram("eqv-fw")
        s = m.add_binary("s")
        x = m.add_integer("x", 0, 10)
        y = m.add_integer("y", 0, 10)
        add_equivalence_conjunction(m, s, [(x, 5), (y, 4)], "e")
        m.add_ge(s, 1)
        m.minimize(x + y)
        sol = solve(m)
        assert sol.int_value("x") >= 5 and sol.int_value("y") >= 4

    def test_equivalence_conjunction_backward(self):
        # both conjuncts hold -> indicator must be 1 (maximizing -s would like 0)
        m = IntegerProgram("eqv-bw")
        s = m.add_binary("s")
        x = m.add_integer("x", 0, 10)
        y = m.add_integer("y", 0, 10)
        add_equivalence_conjunction(m, s, [(x, 5), (y, 4)], "e")
        m.add_eq(x, 6)
        m.add_eq(y, 9)
        m.minimize(s)
        assert solve(m).int_value("s") == 1

    def test_equivalence_conjunction_negative_case(self):
        # one conjunct violated -> indicator can and will be 0 when minimised
        m = IntegerProgram("eqv-neg")
        s = m.add_binary("s")
        x = m.add_integer("x", 0, 10)
        add_equivalence_conjunction(m, s, [(x, 5)], "e")
        m.add_eq(x, 2)
        m.maximize(s)
        assert solve(m).int_value("s") == 0

    def test_expression_bounds_helper(self):
        m = IntegerProgram("b")
        x = m.add_integer("x", 2, 5)
        lo, hi = expression_bounds(m, 3 * x - 1)
        assert lo == 5 and hi == 14
