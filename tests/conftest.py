"""Shared fixtures for the test-suite.

The fixtures provide a few reference DAGs whose register saturation and
critical path are known analytically, plus the machines used throughout the
paper's discussion.
"""

from __future__ import annotations

import pytest

from repro.codes.kernels import figure2_dag
from repro.core import DDGBuilder, chain_ddg, fork_join_ddg, independent_chains_ddg, superscalar, vliw


def _has_numeric_stack() -> bool:
    try:
        import numpy  # noqa: F401
        import scipy  # noqa: F401
    except ImportError:
        return False
    return True


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "needs_ilp_solver: test solves integer programs exactly; both "
        "registered ILP backends need numpy (and HiGHS needs scipy), so it "
        "is skipped on the no-numpy CI leg",
    )


def pytest_collection_modifyitems(config, items):
    if _has_numeric_stack():
        return
    skip = pytest.mark.skip(reason="needs numpy/scipy ILP backends")
    for item in items:
        if "needs_ilp_solver" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def diamond_ddg():
    """a -> {b, c} -> d with unit latencies: RS(int) = 2 (b and c together)."""

    return (
        DDGBuilder("diamond")
        .default_type("int")
        .value("a", latency=1)
        .value("b", latency=1)
        .value("c", latency=1)
        .op("d", latency=1)
        .flow("a", "b")
        .flow("a", "c")
        .flow("b", "d")
        .flow("c", "d")
        .build()
    )


@pytest.fixture
def fork4_ddg():
    """One producer feeding four parallel consumers: RS = 4."""

    return fork_join_ddg(4)


@pytest.fixture
def chain5_ddg():
    """A pure dependence chain of 5 values: RS = 1."""

    return chain_ddg(5)


@pytest.fixture
def chains3x3_ddg():
    """Three independent chains of 3 values: RS = 3."""

    return independent_chains_ddg(3, 3)


@pytest.fixture
def figure2():
    """The paper's Figure-2-style example: RS = 4, long-latency value ``a``."""

    return figure2_dag()


@pytest.fixture
def two_types_ddg():
    """A DAG mixing int and float values (exercises multi-type code paths)."""

    b = DDGBuilder("two-types")
    b.value("addr", "int", latency=1)
    b.value("x", "float", latency=4, fu_class="mem")
    b.value("y", "float", latency=4, fu_class="mem")
    b.value("prod", "float", latency=4, fu_class="fpu")
    b.op("st", latency=1, fu_class="mem")
    b.flow("addr", "x")
    b.flow("addr", "y")
    b.flow("x", "prod")
    b.flow("y", "prod")
    b.flow("prod", "st")
    return b.build()


@pytest.fixture
def superscalar_machine():
    return superscalar(int_registers=8, float_registers=8)


@pytest.fixture
def vliw_machine():
    return vliw(int_registers=16, float_registers=16)
